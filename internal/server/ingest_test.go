package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func decodeMutation(t *testing.T, body []byte) MutationResponse {
	t.Helper()
	var m MutationResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("mutation response %s: %v", body, err)
	}
	return m
}

// The mutation endpoints must publish epochs, make new objects queryable,
// map missing ids to 404, and report ingest state in /stats.
func TestMutationEndpoints(t *testing.T) {
	idx, _ := fixture(t)
	srv := New(idx, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts, "/add", AddRequest{X: 3.3, Y: 3.3, Keywords: []string{"zebra"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/add: status %d: %s", resp.StatusCode, body)
	}
	added := decodeMutation(t, body)
	if added.Epoch != 1 || added.LiveObjects != 121 {
		t.Fatalf("/add response %+v, want epoch 1 with 121 live objects", added)
	}

	// The fresh keyword must be reachable through a one-shot query.
	resp, body = postJSON(t, ts, "/topk", TopKRequest{X: 3.3, Y: 3.3, Keywords: []string{"zebra"}, K: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/topk: status %d: %s", resp.StatusCode, body)
	}
	var topk struct {
		Results []RankedPayload `json:"results"`
	}
	if err := json.Unmarshal(body, &topk); err != nil {
		t.Fatal(err)
	}
	if len(topk.Results) != 1 || topk.Results[0].ObjectID != added.ID {
		t.Fatalf("/topk for the added keyword returned %+v, want object %d", topk.Results, added.ID)
	}

	resp, body = postJSON(t, ts, "/update", UpdateRequest{ID: added.ID, X: 4.4, Y: 4.4, Keywords: []string{"zebra"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/update: status %d: %s", resp.StatusCode, body)
	}
	updated := decodeMutation(t, body)
	if updated.ID == added.ID || updated.Epoch != 2 || updated.LiveObjects != 121 {
		t.Fatalf("/update response %+v, want a fresh id at epoch 2 with 121 live objects", updated)
	}

	resp, body = postJSON(t, ts, "/delete", DeleteRequest{ID: updated.ID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/delete: status %d: %s", resp.StatusCode, body)
	}
	if del := decodeMutation(t, body); del.Epoch != 3 || del.LiveObjects != 120 {
		t.Fatalf("/delete response %+v, want epoch 3 with 120 live objects", del)
	}

	// Dead or never-assigned ids are the client's mistake: 404.
	for _, id := range []int{added.ID, updated.ID, 99999} {
		if resp, body = postJSON(t, ts, "/delete", DeleteRequest{ID: id}); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("/delete id %d: status %d (%s), want 404", id, resp.StatusCode, body)
		}
		if resp, body = postJSON(t, ts, "/update", UpdateRequest{ID: id, X: 1, Y: 1}); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("/update id %d: status %d (%s), want 404", id, resp.StatusCode, body)
		}
	}

	resp, body = postJSON(t, ts, "/topk", TopKRequest{X: 3.3, Y: 3.3, Keywords: []string{"zebra"}, K: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("topk after delete failed")
	}
	if err := json.Unmarshal(body, &topk); err != nil {
		t.Fatal(err)
	}
	for _, r := range topk.Results {
		if r.ObjectID == added.ID || r.ObjectID == updated.ID {
			t.Fatalf("deleted object %d still served by /topk", r.ObjectID)
		}
	}

	res, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsPayload
	if err := json.NewDecoder(res.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if stats.Ingest.Epoch != 3 || stats.Ingest.LiveObjects != 120 || stats.Ingest.TotalObjects != 122 {
		t.Fatalf("/stats ingest %+v, want epoch 3, 120 live of 122 allocated", stats.Ingest)
	}
	// With no session pinning an old epoch, the writer reclaims every
	// retired record right after publishing, so the counters report zero
	// un-reclaimed garbage (they counted upward before page reuse existed).
	if stats.Ingest.RetiredRecords != 0 || stats.Ingest.RetiredPages != 0 {
		t.Fatalf("/stats ingest %+v, want retired counters reclaimed to zero", stats.Ingest)
	}
}

// Queries racing mutations must all succeed: writers never block readers,
// and every reader sees some fully published epoch.
func TestConcurrentMutationsAndQueries(t *testing.T) {
	idx, wire := fixture(t)
	wire.Strategy = "exact"
	srv := New(idx, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const writers, readers, perG = 4, 8, 12
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, body := postJSON(t, ts, "/add",
					AddRequest{X: float64(g), Y: float64(i), Keywords: []string{fmt.Sprintf("w%d", g)}})
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("/add: status %d: %s", resp.StatusCode, body)
					return
				}
				m := decodeMutation(t, body)
				if i%3 == 2 {
					if resp, body := postJSON(t, ts, "/delete", DeleteRequest{ID: m.ID}); resp.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("/delete: status %d: %s", resp.StatusCode, body)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var resp *http.Response
				var body []byte
				if g%2 == 0 {
					resp, body = postJSON(t, ts, "/maxbrstknn", wire)
				} else {
					resp, body = postJSON(t, ts, "/topk", TopKRequest{X: 5, Y: 5, Keywords: []string{"a", "b"}, K: 3})
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("query: status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := idx.IngestStats()
	if st.Epoch == 0 || st.LiveObjects != 120+writers*perG-writers*(perG/3) {
		t.Fatalf("final ingest state %+v", st)
	}
}
