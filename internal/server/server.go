package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	maxbrstknn "repro"
	"repro/internal/storage"
)

// Config tunes the serving layer. The zero value is usable: every field
// has a production-sane default.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// MaxInFlight bounds the query requests executing at once; excess
	// requests queue until a slot frees or their context is done.
	// Default: 4 × GOMAXPROCS. Health and stats probes bypass the bound.
	MaxInFlight int
	// RequestTimeout bounds one request's *response* time (default 30s):
	// at the deadline the client receives 503 with a JSON error, but a
	// query already executing is not cancelable mid-traversal — it runs
	// to completion and holds its in-flight slot until then. Size
	// MaxInFlight and RequestTimeout together for the slowest strategy
	// you expose.
	RequestTimeout time.Duration
	// SessionCapacity is the LRU session-cache size in prepared user
	// cohorts (default 64). Zero selects the default; negative disables
	// the bound (never evict).
	SessionCapacity int
	// MaxBodyBytes bounds one request body (default 8 MiB); oversized
	// bodies fail decoding with 400 before any work happens.
	MaxBodyBytes int64
}

func (c Config) addr() string {
	if c.Addr == "" {
		return ":8080"
	}
	return c.Addr
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight <= 0 {
		return 4 * runtime.GOMAXPROCS(0)
	}
	return c.MaxInFlight
}

func (c Config) requestTimeout() time.Duration {
	if c.RequestTimeout <= 0 {
		return 30 * time.Second
	}
	return c.RequestTimeout
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return 8 << 20
	}
	return c.MaxBodyBytes
}

func (c Config) sessionCapacity() int {
	if c.SessionCapacity == 0 {
		return 64
	}
	if c.SessionCapacity < 0 {
		return 0 // unbounded
	}
	return c.SessionCapacity
}

// Server shares one loaded index across concurrent HTTP clients. All
// handlers are safe for concurrent use; the underlying Index and Session
// guarantees (see their godoc) make every query path race-clean.
type Server struct {
	ix       *maxbrstknn.Index
	cfg      Config
	shard    *shardState // non-nil only for NewShard servers
	sessions *lruCache[*maxbrstknn.Session]
	sem      chan struct{}
	inFlight atomic.Int64
	served   atomic.Int64
	start    time.Time
	httpSrv  *http.Server
}

// New wraps an index (in-memory or loaded) in a serving layer.
func New(ix *maxbrstknn.Index, cfg Config) *Server {
	s := &Server{
		ix:       ix,
		cfg:      cfg,
		sessions: newLRUCache[*maxbrstknn.Session](cfg.sessionCapacity()),
		sem:      make(chan struct{}, cfg.maxInFlight()),
		start:    time.Now(),
	}
	s.httpSrv = &http.Server{Addr: cfg.addr(), Handler: s.Handler()}
	return s
}

// Handler returns the full route table — exported so tests and embedders
// can serve it from their own listener (httptest, TLS, unix socket). A
// server built with NewShard serves the shard route table instead.
func (s *Server) Handler() http.Handler {
	if s.shard != nil {
		return s.shardHandler()
	}
	mux := http.NewServeMux()
	mux.Handle("POST /maxbrstknn", s.limited(s.handleMaxBRSTkNN))
	mux.Handle("POST /topl", s.limited(s.handleTopL))
	mux.Handle("POST /multiple", s.limited(s.handleMultiple))
	mux.Handle("POST /topk", s.limited(s.handleTopK))
	mux.Handle("POST /add", s.limited(s.handleAdd))
	mux.Handle("POST /delete", s.limited(s.handleDelete))
	mux.Handle("POST /update", s.limited(s.handleUpdate))
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return timeoutHandler(mux, s.cfg.requestTimeout())
}

// timeoutHandler bounds a route table's response time with the shared
// JSON error body.
func timeoutHandler(h http.Handler, d time.Duration) http.Handler {
	timeoutBody, _ := json.Marshal(map[string]string{"error": "request timed out"})
	return http.TimeoutHandler(h, d, string(timeoutBody))
}

// ListenAndServe serves until Shutdown (which returns
// http.ErrServerClosed here) or a listener error.
func (s *Server) ListenAndServe() error {
	return s.httpSrv.ListenAndServe()
}

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight requests get until ctx expires to complete.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.httpSrv.Shutdown(ctx)
}

// limited bounds in-flight query execution: a request waits for one of
// MaxInFlight slots, giving up with 503 when its context (which includes
// the request timeout and the client connection) expires first.
func (s *Server) limited(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-r.Context().Done():
			writeError(w, http.StatusServiceUnavailable,
				errors.New("request canceled while queued for an execution slot"))
			return
		}
		// The slot may have opened only after the client gave up; don't
		// burn a query nobody will read.
		if r.Context().Err() != nil {
			return
		}
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		defer s.served.Add(1)
		h(w, r)
	})
}

// session returns the prepared session for the request's user cohort,
// building (and caching) it on first sight. The request's ParallelOptions
// configure the build's joint top-k phase on a miss; the prepared
// thresholds are identical for every setting, so cache hits across
// differently-parallel requests are sound. The cache key carries the
// current epoch, so sessions prepared before a mutation are never reused
// afterwards — each request's session reflects the snapshot current when
// its cohort was first seen at that epoch.
func (s *Server) session(req maxbrstknn.Request) (*maxbrstknn.Session, error) {
	key := sessionKey(s.ix.Epoch(), req.Users, req.K)
	return s.sessions.get(key, func() (*maxbrstknn.Session, error) {
		return s.ix.NewParallelSession(req.Users, req.K, req.Parallel)
	})
}

func (s *Server) handleMaxBRSTkNN(w http.ResponseWriter, r *http.Request) {
	_, req, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	sess, err := s.session(req)
	if err != nil {
		writeError(w, queryErrorStatus(err), err)
		return
	}
	res, err := sess.Run(req)
	if err != nil {
		writeError(w, queryErrorStatus(err), err)
		return
	}
	writeJSON(w, func() ([]byte, error) { return ResultJSON(res) })
}

func (s *Server) handleTopL(w http.ResponseWriter, r *http.Request) {
	s.handleList(w, r, func(sess *maxbrstknn.Session, req maxbrstknn.Request, n int) ([]maxbrstknn.Result, error) {
		return sess.RunTopL(req, n)
	}, func(q *QueryRequest) int { return q.L })
}

func (s *Server) handleMultiple(w http.ResponseWriter, r *http.Request) {
	s.handleList(w, r, func(sess *maxbrstknn.Session, req maxbrstknn.Request, n int) ([]maxbrstknn.Result, error) {
		return sess.RunMultiple(req, n)
	}, func(q *QueryRequest) int { return q.M })
}

// handleList factors the shared shape of /topl and /multiple: decode,
// session lookup, run with a count parameter, encode a result list.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request,
	run func(*maxbrstknn.Session, maxbrstknn.Request, int) ([]maxbrstknn.Result, error),
	count func(*QueryRequest) int) {

	wire, req, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	// Reject unsupported strategies before the session lookup: building
	// (and caching) a cohort's joint top-k only for RunTopL/RunMultiple
	// to refuse the strategy would burn the most expensive computation in
	// the system on a doomed request.
	if req.Strategy != maxbrstknn.Exact && req.Strategy != maxbrstknn.Approx {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("this endpoint does not support the %s strategy (use exact or approx)", req.Strategy))
		return
	}
	n := count(wire)
	if n <= 0 {
		n = 1
	}
	sess, err := s.session(req)
	if err != nil {
		writeError(w, queryErrorStatus(err), err)
		return
	}
	results, err := run(sess, req, n)
	if err != nil {
		writeError(w, queryErrorStatus(err), err)
		return
	}
	writeJSON(w, func() ([]byte, error) { return ResultsJSON(results) })
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var wire TopKRequest
	if err := s.decodeBody(w, r, &wire); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.ix.TopK(wire.X, wire.Y, wire.Keywords, wire.K)
	if err != nil {
		writeError(w, queryErrorStatus(err), err)
		return
	}
	writeJSON(w, func() ([]byte, error) { return TopKJSON(res) })
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var wire AddRequest
	if err := s.decodeBody(w, r, &wire); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.ix.AddObject(wire.X, wire.Y, wire.Keywords...)
	if err != nil {
		writeError(w, mutationErrorStatus(err), err)
		return
	}
	s.writeMutation(w, id)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var wire DeleteRequest
	if err := s.decodeBody(w, r, &wire); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.ix.DeleteObject(wire.ID); err != nil {
		writeError(w, mutationErrorStatus(err), err)
		return
	}
	s.writeMutation(w, wire.ID)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var wire UpdateRequest
	if err := s.decodeBody(w, r, &wire); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.ix.UpdateObject(wire.ID, wire.X, wire.Y, wire.Keywords...)
	if err != nil {
		writeError(w, mutationErrorStatus(err), err)
		return
	}
	s.writeMutation(w, id)
}

// writeMutation reports a successful mutation: the object id it touched
// (for /add and /update, the id the caller queries by afterwards) and
// the state of the index after it. Epoch and live count come from one
// snapshot load, so they are mutually consistent — though with other
// writers running they may describe a later epoch than this mutation's.
func (s *Server) writeMutation(w http.ResponseWriter, id int) {
	st := s.ix.IngestStats()
	writeJSON(w, func() ([]byte, error) {
		return appendNewline(json.Marshal(MutationResponse{
			ID:          id,
			Epoch:       st.Epoch,
			LiveObjects: st.LiveObjects,
		}))
	})
}

// mutationErrorStatus classifies an error from the ingestion path:
// a missing object id is the client's mistake (404), storage faults are
// server errors, everything else is request validation (400).
func mutationErrorStatus(err error) int {
	if errors.Is(err, maxbrstknn.ErrNoSuchObject) {
		return http.StatusNotFound
	}
	return queryErrorStatus(err)
}

// StatsPayload is the /stats response body.
type StatsPayload struct {
	Objects         int   `json:"objects"`
	SimulatedIO     int64 `json:"simulated_io"`
	PhysicalRecords int64 `json:"physical_records"`
	PhysicalPages   int64 `json:"physical_pages"`
	BufferHits      int64 `json:"buffer_hits"`
	BufferMisses    int64 `json:"buffer_misses"`
	// DecodedCache reports the decoded-object cache above the buffer
	// pool: decoded tree nodes and posting lists shared across requests.
	DecodedCache struct {
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		Evictions int64   `json:"evictions"`
		Entries   int     `json:"entries"`
		Bytes     int64   `json:"bytes"`
		CapBytes  int64   `json:"cap_bytes"`
		HitRate   float64 `json:"hit_rate"`
	} `json:"decoded_cache"`
	SessionCache struct {
		Size    int     `json:"size"`
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"session_cache"`
	// Ingest reports the copy-on-write ingestion machinery: the current
	// epoch (one increment per published mutation), live vs allocated
	// object ids, and the append-only store records superseded by
	// mutations (kept for older snapshots; a compacting rebuild reclaims
	// them).
	Ingest struct {
		Epoch          uint64 `json:"epoch"`
		LiveObjects    int    `json:"live_objects"`
		TotalObjects   int    `json:"total_objects"`
		RetiredRecords int64  `json:"retired_records"`
		RetiredPages   int64  `json:"retired_pages"`
	} `json:"ingest"`
	InFlight      int64   `json:"in_flight"`
	MaxInFlight   int     `json:"max_in_flight"`
	ServedQueries int64   `json:"served_queries"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var p StatsPayload
	p.Objects = s.ix.NumObjects()
	p.SimulatedIO = s.ix.SimulatedIO()
	p.PhysicalRecords, p.PhysicalPages = s.ix.ReadStats()
	cs := s.ix.CacheStats()
	p.BufferHits, p.BufferMisses = cs.BufferHits, cs.BufferMisses
	p.DecodedCache.Hits, p.DecodedCache.Misses = cs.DecodedHits, cs.DecodedMisses
	p.DecodedCache.Evictions = cs.DecodedEvictions
	p.DecodedCache.Entries, p.DecodedCache.Bytes = cs.DecodedEntries, cs.DecodedBytes
	p.DecodedCache.CapBytes = cs.DecodedCapBytes
	if total := cs.DecodedHits + cs.DecodedMisses; total > 0 {
		p.DecodedCache.HitRate = float64(cs.DecodedHits) / float64(total)
	}
	ing := s.ix.IngestStats()
	p.Ingest.Epoch = ing.Epoch
	p.Ingest.LiveObjects, p.Ingest.TotalObjects = ing.LiveObjects, ing.TotalObjects
	p.Ingest.RetiredRecords, p.Ingest.RetiredPages = ing.RetiredRecords, ing.RetiredPages
	size, hits, misses := s.sessions.stats()
	p.SessionCache.Size, p.SessionCache.Hits, p.SessionCache.Misses = size, hits, misses
	if total := hits + misses; total > 0 {
		p.SessionCache.HitRate = float64(hits) / float64(total)
	}
	p.InFlight = s.inFlight.Load()
	p.MaxInFlight = s.cfg.maxInFlight()
	p.ServedQueries = s.served.Load()
	p.UptimeSeconds = time.Since(s.start).Seconds()
	writeJSON(w, func() ([]byte, error) { return appendNewline(json.Marshal(p)) })
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, func() ([]byte, error) {
		return appendNewline(json.Marshal(map[string]any{
			"status":  "ok",
			"objects": s.ix.NumObjects(),
		}))
	})
}

// decodeBody decodes one JSON request body under the configured size
// bound — the shared entry point of every query endpoint, so body limits
// and error shapes cannot drift between handlers.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request) (*QueryRequest, maxbrstknn.Request, bool) {
	var wire QueryRequest
	if err := s.decodeBody(w, r, &wire); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, maxbrstknn.Request{}, false
	}
	req, err := wire.ToRequest()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, maxbrstknn.Request{}, false
	}
	return &wire, req, true
}

// queryErrorStatus classifies an error from the query path: storage-layer
// faults (a corrupt or truncated index file surfacing mid-traversal, an
// I/O error from the backing file) are server errors; everything else the
// library returns is request validation and maps to 400.
func queryErrorStatus(err error) int {
	for _, sentinel := range []error{
		storage.ErrBadMagic, storage.ErrVersionMismatch, storage.ErrChecksum, storage.ErrTruncated,
	} {
		if errors.Is(err, sentinel) {
			return http.StatusInternalServerError
		}
	}
	var pathErr *fs.PathError
	if errors.As(err, &pathErr) || errors.Is(err, io.ErrUnexpectedEOF) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, encode func() ([]byte, error)) {
	body, err := encode()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
