// Package server implements the concurrent HTTP/JSON query-serving layer:
// one long-lived process opens one index (built in memory or loaded from a
// .mxbr file) and shares it across any number of concurrent clients,
// amortizing the index cost the way the paper's provider scenario assumes.
//
// Endpoints:
//
//	POST /maxbrstknn  — one MaxBRSTkNN query (per-request strategy and
//	                    parallelism)
//	POST /topl        — the ranked top-L candidate locations
//	POST /multiple    — m greedy placements covering distinct users
//	POST /topk        — one user's top-k objects
//	POST /add         — insert one object into the live index
//	POST /delete      — remove one object by id
//	POST /update      — replace one object (new id, one atomic epoch)
//	GET  /stats       — I/O ledger, buffer pool, session cache, ingest
//	                    epoch, in-flight
//	GET  /healthz     — liveness probe
//
// Mutations publish copy-on-write snapshots, so concurrent queries never
// block on them: a query in flight during an /add finishes on the epoch
// it started on, and the next request observes the new epoch.
//
// Sessions — the prepared per-user-set joint top-k state — are cached in
// an LRU keyed by (user set, k), so repeated queries from the same user
// cohort skip the expensive phase-1 computation entirely and pay only for
// candidate selection.
package server

import (
	"encoding/json"
	"fmt"
	"strings"

	maxbrstknn "repro"
)

// UserSpec is the wire form of one user.
type UserSpec struct {
	X        float64  `json:"x"`
	Y        float64  `json:"y"`
	Keywords []string `json:"keywords,omitempty"`
}

// ParallelSpec is the wire form of maxbrstknn.ParallelOptions.
type ParallelSpec struct {
	Workers int `json:"workers,omitempty"`
	Groups  int `json:"groups,omitempty"`
}

// QueryRequest is the body of /maxbrstknn, /topl and /multiple.
type QueryRequest struct {
	Users            []UserSpec   `json:"users"`
	Locations        [][2]float64 `json:"locations"`
	Keywords         []string     `json:"keywords"`
	MaxKeywords      int          `json:"max_keywords"`
	K                int          `json:"k"`
	ExistingKeywords []string     `json:"existing_keywords,omitempty"`
	// Strategy is "exact" (default), "approx", "exhaustive" or
	// "user-indexed". /topl and /multiple accept only the first two.
	Strategy string       `json:"strategy,omitempty"`
	Parallel ParallelSpec `json:"parallel,omitempty"`
	// L is the shortlist length for /topl (default 1).
	L int `json:"l,omitempty"`
	// M is the number of placements for /multiple (default 1).
	M int `json:"m,omitempty"`
}

// AddRequest is the body of /add.
type AddRequest struct {
	X        float64  `json:"x"`
	Y        float64  `json:"y"`
	Keywords []string `json:"keywords,omitempty"`
}

// DeleteRequest is the body of /delete.
type DeleteRequest struct {
	ID int `json:"id"`
}

// UpdateRequest is the body of /update.
type UpdateRequest struct {
	ID       int      `json:"id"`
	X        float64  `json:"x"`
	Y        float64  `json:"y"`
	Keywords []string `json:"keywords,omitempty"`
}

// MutationResponse is the body every mutation endpoint answers with: the
// object id the mutation concerns (the inserted id for /add, the
// replacement's fresh id for /update, the removed id for /delete) and
// the index state after publication.
type MutationResponse struct {
	ID          int    `json:"id"`
	Epoch       uint64 `json:"epoch"`
	LiveObjects int    `json:"live_objects"`
}

// TopKRequest is the body of /topk.
type TopKRequest struct {
	X        float64  `json:"x"`
	Y        float64  `json:"y"`
	Keywords []string `json:"keywords,omitempty"`
	K        int      `json:"k"`
}

// ParseStrategy maps a wire strategy name to the library constant.
func ParseStrategy(s string) (maxbrstknn.Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "exact":
		return maxbrstknn.Exact, nil
	case "approx":
		return maxbrstknn.Approx, nil
	case "exhaustive":
		return maxbrstknn.Exhaustive, nil
	case "user-indexed", "userindexed":
		return maxbrstknn.UserIndexed, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

// ToRequest converts the wire query into a library Request.
func (q *QueryRequest) ToRequest() (maxbrstknn.Request, error) {
	strat, err := ParseStrategy(q.Strategy)
	if err != nil {
		return maxbrstknn.Request{}, err
	}
	users := make([]maxbrstknn.UserSpec, len(q.Users))
	for i, u := range q.Users {
		users[i] = maxbrstknn.UserSpec{X: u.X, Y: u.Y, Keywords: u.Keywords}
	}
	return maxbrstknn.Request{
		Users:            users,
		Locations:        q.Locations,
		Keywords:         q.Keywords,
		MaxKeywords:      q.MaxKeywords,
		K:                q.K,
		ExistingKeywords: q.ExistingKeywords,
		Strategy:         strat,
		Parallel:         maxbrstknn.ParallelOptions{Workers: q.Parallel.Workers, Groups: q.Parallel.Groups},
	}, nil
}

// PruningPayload is the wire form of maxbrstknn.PruningStats.
type PruningPayload struct {
	TotalUsers    int     `json:"total_users"`
	ResolvedUsers int     `json:"resolved_users"`
	PrunedPercent float64 `json:"pruned_percent"`
}

// ResultPayload is the wire form of one maxbrstknn.Result.
type ResultPayload struct {
	LocationIndex int             `json:"location_index"`
	Location      [2]float64      `json:"location"`
	Keywords      []string        `json:"keywords"`
	UserIDs       []int           `json:"user_ids"`
	Count         int             `json:"count"`
	Pruning       *PruningPayload `json:"pruning,omitempty"`
}

// PayloadFromResult converts a library Result to its wire form.
func PayloadFromResult(r maxbrstknn.Result) ResultPayload {
	p := ResultPayload{
		LocationIndex: r.LocationIndex,
		Location:      r.Location,
		Keywords:      r.Keywords,
		UserIDs:       r.UserIDs,
		Count:         r.Count(),
	}
	if r.Stats.TotalUsers > 0 {
		p.Pruning = &PruningPayload{
			TotalUsers:    r.Stats.TotalUsers,
			ResolvedUsers: r.Stats.ResolvedUsers,
			PrunedPercent: r.Stats.PrunedPercent,
		}
	}
	return p
}

// ResultJSON returns exactly the bytes the server writes for one Result —
// the reference for the byte-identity guarantee: an HTTP round-trip must
// return ResultJSON(directLibraryResult) verbatim.
func ResultJSON(r maxbrstknn.Result) ([]byte, error) {
	return appendNewline(json.Marshal(PayloadFromResult(r)))
}

// ResultsJSON is ResultJSON for the list responses of /topl and /multiple.
func ResultsJSON(rs []maxbrstknn.Result) ([]byte, error) {
	payloads := make([]ResultPayload, len(rs))
	for i, r := range rs {
		payloads[i] = PayloadFromResult(r)
	}
	return appendNewline(json.Marshal(struct {
		Results []ResultPayload `json:"results"`
	}{payloads}))
}

// RankedPayload is the wire form of one top-k entry.
type RankedPayload struct {
	ObjectID int     `json:"object_id"`
	Score    float64 `json:"score"`
}

// TopKJSON returns exactly the bytes the server writes for a /topk answer.
func TopKJSON(rs []maxbrstknn.RankedObject) ([]byte, error) {
	payloads := make([]RankedPayload, len(rs))
	for i, r := range rs {
		payloads[i] = RankedPayload{ObjectID: r.ObjectID, Score: r.Score}
	}
	return appendNewline(json.Marshal(struct {
		Results []RankedPayload `json:"results"`
	}{payloads}))
}

// appendNewline matches json.Encoder's trailing newline so helper output
// and handler output stay byte-identical.
func appendNewline(b []byte, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
