package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	maxbrstknn "repro"
)

// fixture builds a deterministic random index plus a wire query.
func fixture(t testing.TB) (*maxbrstknn.Index, QueryRequest) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	words := []string{"a", "b", "c", "d", "e", "f"}
	b := maxbrstknn.NewBuilder()
	for i := 0; i < 120; i++ {
		b.AddObject(rng.Float64()*10, rng.Float64()*10,
			words[rng.Intn(len(words))], words[rng.Intn(len(words))])
	}
	idx, err := b.Build(maxbrstknn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	users := make([]UserSpec, 20)
	for i := range users {
		users[i] = UserSpec{
			X: rng.Float64() * 10, Y: rng.Float64() * 10,
			Keywords: []string{words[rng.Intn(len(words))]},
		}
	}
	return idx, QueryRequest{
		Users:       users,
		Locations:   [][2]float64{{2, 2}, {8, 8}, {5, 5}},
		Keywords:    words,
		MaxKeywords: 2,
		K:           3,
	}
}

func postJSON(t testing.TB, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestRoundTripByteIdentical is the serving guarantee: for every strategy
// and every ParallelOptions setting, the HTTP response body equals the
// direct library call's Result encoded through the same wire path, byte
// for byte.
func TestRoundTripByteIdentical(t *testing.T) {
	idx, wire := fixture(t)
	srv := New(idx, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	strategies := []string{"exact", "approx", "exhaustive", "user-indexed"}
	parallels := []ParallelSpec{{}, {Workers: 2}, {Workers: 4, Groups: 8}}
	for _, strat := range strategies {
		for _, par := range parallels {
			wire.Strategy, wire.Parallel = strat, par
			req, err := wire.ToRequest()
			if err != nil {
				t.Fatal(err)
			}
			direct, err := idx.MaxBRSTkNN(req)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ResultJSON(direct)
			if err != nil {
				t.Fatal(err)
			}
			resp, got := postJSON(t, ts, "/maxbrstknn", wire)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s/%+v: status %d: %s", strat, par, resp.StatusCode, got)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s/%+v: response not byte-identical:\n got %s\nwant %s", strat, par, got, want)
			}
		}
	}
}

func TestTopLAndMultipleRoundTrip(t *testing.T) {
	idx, wire := fixture(t)
	srv := New(idx, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, err := wire.ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := idx.NewSession(req.Users, req.K)
	if err != nil {
		t.Fatal(err)
	}

	wire.L = 3
	directTopL, err := sess.RunTopL(req, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ResultsJSON(directTopL)
	if err != nil {
		t.Fatal(err)
	}
	resp, got := postJSON(t, ts, "/topl", wire)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topl status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("topl not byte-identical:\n got %s\nwant %s", got, want)
	}

	wire.L, wire.M = 0, 2
	directMulti, err := sess.RunMultiple(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err = ResultsJSON(directMulti)
	if err != nil {
		t.Fatal(err)
	}
	resp, got = postJSON(t, ts, "/multiple", wire)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multiple status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("multiple not byte-identical:\n got %s\nwant %s", got, want)
	}

	// Unsupported strategies are rejected up front — before the server
	// spends a session build on the doomed request.
	_, _, missesBefore := srv.sessions.stats()
	wire.Strategy = "exhaustive"
	wire.L = 2
	wire.Users = append([]UserSpec{{X: 9, Y: 9}}, wire.Users...) // distinct cohort
	resp, got = postJSON(t, ts, "/topl", wire)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("topl with exhaustive: status %d body %s, want 400", resp.StatusCode, got)
	}
	if _, _, misses := srv.sessions.stats(); misses != missesBefore {
		t.Errorf("rejected strategy still built a session (misses %d -> %d)", missesBefore, misses)
	}
}

func TestBodySizeLimit(t *testing.T) {
	idx, wire := fixture(t)
	srv := New(idx, Config{MaxBodyBytes: 256})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts, "/maxbrstknn", wire) // fixture body > 256 bytes
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", resp.StatusCode)
	}
}

func TestTopKRoundTrip(t *testing.T) {
	idx, _ := fixture(t)
	srv := New(idx, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	direct, err := idx.TopK(5, 5, []string{"a", "b"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TopKJSON(direct)
	if err != nil {
		t.Fatal(err)
	}
	resp, got := postJSON(t, ts, "/topk", TopKRequest{X: 5, Y: 5, Keywords: []string{"a", "b"}, K: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("topk not byte-identical:\n got %s\nwant %s", got, want)
	}
}

func TestServedFromLoadedIndexMatchesInMemory(t *testing.T) {
	idx, wire := fixture(t)
	path := filepath.Join(t.TempDir(), "served.mxbr")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := maxbrstknn.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	srv := New(loaded, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, err := wire.ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := idx.MaxBRSTkNN(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ResultJSON(direct)
	if err != nil {
		t.Fatal(err)
	}
	resp, got := postJSON(t, ts, "/maxbrstknn", wire)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("loaded-index serving differs from in-memory library call:\n got %s\nwant %s", got, want)
	}
}

func TestSessionCacheHits(t *testing.T) {
	idx, wire := fixture(t)
	srv := New(idx, Config{SessionCapacity: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts, "/maxbrstknn", wire)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	size, hits, misses := srv.sessions.stats()
	if size != 1 || misses != 1 || hits != 2 {
		t.Errorf("session cache size=%d hits=%d misses=%d, want 1/2/1", size, hits, misses)
	}

	// A different k is a different cohort.
	wire2 := wire
	wire2.K = wire.K + 1
	if resp, body := postJSON(t, ts, "/maxbrstknn", wire2); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if size, _, _ := srv.sessions.stats(); size != 2 {
		t.Errorf("cache size = %d after second cohort, want 2", size)
	}
}

func TestSessionCacheEvicts(t *testing.T) {
	c := newLRUCache[*maxbrstknn.Session](2)
	build := func() (*maxbrstknn.Session, error) { return nil, nil }
	for _, key := range []string{"a", "b", "c", "b"} {
		if _, err := c.get(key, build); err != nil {
			t.Fatal(err)
		}
	}
	size, hits, misses := c.stats()
	if size != 2 {
		t.Errorf("size = %d, want capacity 2", size)
	}
	if hits != 1 || misses != 3 {
		t.Errorf("hits=%d misses=%d, want 1/3", hits, misses)
	}
	// "a" was evicted by "c"; "b" survived via its recent hit.
	if _, ok := c.entries["a"]; ok {
		t.Error("oldest entry not evicted")
	}
	if _, ok := c.entries["b"]; !ok {
		t.Error("recently used entry evicted")
	}
}

func TestSessionCacheBuildErrorNotCached(t *testing.T) {
	c := newLRUCache[*maxbrstknn.Session](4)
	calls := 0
	build := func() (*maxbrstknn.Session, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("transient")
		}
		return nil, nil
	}
	if _, err := c.get("k", build); err == nil {
		t.Fatal("first build should fail")
	}
	if _, err := c.get("k", build); err != nil {
		t.Fatalf("retry after failed build: %v", err)
	}
	if calls != 2 {
		t.Errorf("build calls = %d, want 2 (errors must not be cached)", calls)
	}
}

func TestConcurrentClientsShareOneServer(t *testing.T) {
	idx, wire := fixture(t)
	srv := New(idx, Config{MaxInFlight: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, err := wire.ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := idx.MaxBRSTkNN(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ResultJSON(direct)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				resp, got := postJSON(t, ts, "/maxbrstknn", wire)
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("status %d: %s", resp.StatusCode, got)
					return
				}
				if !bytes.Equal(got, want) {
					errc <- fmt.Errorf("concurrent response diverged: %s", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if _, hits, misses := srv.sessions.stats(); misses != 1 || hits != 47 {
		t.Errorf("hits=%d misses=%d, want 47/1 (one build shared by all)", hits, misses)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	idx, wire := fixture(t)
	srv := New(idx, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, body := postJSON(t, ts, "/maxbrstknn", wire); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Objects int    `json:"objects"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Objects != idx.NumObjects() {
		t.Errorf("healthz = %+v", health)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsPayload
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Objects != idx.NumObjects() {
		t.Errorf("stats.Objects = %d, want %d", stats.Objects, idx.NumObjects())
	}
	if stats.SimulatedIO == 0 {
		t.Error("stats.SimulatedIO = 0 after a query")
	}
	if stats.ServedQueries != 1 {
		t.Errorf("stats.ServedQueries = %d, want 1", stats.ServedQueries)
	}
	if stats.SessionCache.Misses != 1 {
		t.Errorf("stats.SessionCache.Misses = %d, want 1", stats.SessionCache.Misses)
	}
}

func TestBadRequests(t *testing.T) {
	idx, wire := fixture(t)
	srv := New(idx, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Invalid JSON.
	resp, err := http.Post(ts.URL+"/maxbrstknn", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid JSON: status %d, want 400", resp.StatusCode)
	}

	// Unknown strategy.
	bad := wire
	bad.Strategy = "quantum"
	if resp, body := postJSON(t, ts, "/maxbrstknn", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown strategy: status %d body %s, want 400", resp.StatusCode, body)
	}

	// No users.
	bad = wire
	bad.Users = nil
	if resp, body := postJSON(t, ts, "/maxbrstknn", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no users: status %d body %s, want 400", resp.StatusCode, body)
	}

	// GET on a query endpoint.
	resp, err = http.Get(ts.URL + "/maxbrstknn")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /maxbrstknn: status %d, want 405", resp.StatusCode)
	}
}
