package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForNCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		n := 57
		seen := make([]atomic.Int32, n)
		ForN(n, workers, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForNEmpty(t *testing.T) {
	called := false
	ForN(0, 4, func(int) { called = true })
	ForN(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForNSequentialOrder(t *testing.T) {
	// workers <= 1 must run in index order on the calling goroutine.
	var order []int
	ForN(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("sequential ForN out of order: %v", order)
		}
	}
}

func TestMaxCounter(t *testing.T) {
	var c MaxCounter
	if c.Get() != 0 {
		t.Fatalf("zero value = %d", c.Get())
	}
	ForN(100, 8, func(i int) { c.Raise(i) })
	if c.Get() != 99 {
		t.Fatalf("after raises, got %d want 99", c.Get())
	}
	c.Raise(5) // lowering is a no-op
	if c.Get() != 99 {
		t.Fatalf("Raise lowered the counter to %d", c.Get())
	}
}
