// Package parallel provides the bounded fan-out/fan-in primitives the
// query engine's parallel paths share. The helpers are deliberately
// minimal: deterministic result placement is the caller's job (write to
// index i of a pre-sized slice), so every user of this package stays
// byte-identical to its sequential counterpart regardless of scheduling.
package parallel

import (
	"sync"
	"sync/atomic"
)

// ForN runs fn(i) for every i in [0, n), using up to workers goroutines.
// With workers <= 1 (or n <= 1) it degenerates to a plain loop on the
// calling goroutine — the sequential special case. Iterations are handed
// out through an atomic cursor, so uneven per-item cost self-balances.
// fn must confine its writes to per-index state.
func ForN(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// MaxCounter is a monotone shared maximum — the lock-free incumbent bound
// parallel best-first searches use to skip dominated work. The zero value
// holds zero.
type MaxCounter struct {
	v atomic.Int64
}

// Get returns the current maximum.
func (c *MaxCounter) Get() int { return int(c.v.Load()) }

// Raise lifts the maximum to at least v.
func (c *MaxCounter) Raise(v int) {
	for {
		cur := c.v.Load()
		if int64(v) <= cur || c.v.CompareAndSwap(cur, int64(v)) {
			return
		}
	}
}
