// Package parallel provides the bounded fan-out/fan-in primitives the
// query engine's parallel paths share. The helpers are deliberately
// minimal: deterministic result placement is the caller's job (write to
// index i of a pre-sized slice), so every user of this package stays
// byte-identical to its sequential counterpart regardless of scheduling.
package parallel

import (
	"sync"
	"sync/atomic"
)

// ForN runs fn(i) for every i in [0, n), using up to workers goroutines.
// With workers <= 1 (or n <= 1) it degenerates to a plain loop on the
// calling goroutine — the sequential special case. Iterations are handed
// out through an atomic cursor, so uneven per-item cost self-balances.
// fn must confine its writes to per-index state.
func ForN(n, workers int, fn func(i int)) {
	ForNWorkers(n, workers, func(_, i int) { fn(i) })
}

// Workers returns the number of goroutines ForN and ForNWorkers actually
// use for n items under a requested bound — the size callers give their
// per-worker scratch slices. Zero when there is nothing to run.
func Workers(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForNWorkers is ForN with the worker index exposed: fn(w, i) runs with
// w in [0, Workers(n, workers)), and no two invocations with the same w
// ever overlap — so fn may key mutable per-worker scratch (reused sum and
// top-k buffers) by w without locking. The sequential special case runs
// everything as worker 0.
func ForNWorkers(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(n, workers)
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// MaxCounter is a monotone shared maximum — the lock-free incumbent bound
// parallel best-first searches use to skip dominated work. The zero value
// holds zero.
type MaxCounter struct {
	v atomic.Int64
}

// Get returns the current maximum.
func (c *MaxCounter) Get() int { return int(c.v.Load()) }

// Raise lifts the maximum to at least v.
func (c *MaxCounter) Raise(v int) {
	for {
		cur := c.v.Load()
		if int64(v) <= cur || c.v.CompareAndSwap(cur, int64(v)) {
			return
		}
	}
}
