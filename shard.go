package maxbrstknn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/irtree"
	"repro/internal/textrel"
	"repro/internal/topk"
	"repro/internal/vocab"
)

// FrozenCorpus captures the global corpus context of an index at build
// time: the vocabulary, the collection-level term statistics, the object
// space rectangle, and the relevance model's per-term corpus maxima. It
// is everything a shard build needs so that a shard index — holding only
// a subset of the objects — scores, normalizes, and bounds exactly like
// the global index: frozen stats make every term weight bit-identical,
// and the frozen space makes dmax (Equation 2) identical for any query.
//
// FrozenCorpus reflects the snapshot's build-time vocabulary (the one the
// corpus statistics and model cover), so capture it before mutating the
// index.
type FrozenCorpus struct {
	// Terms is the vocabulary in term-id order.
	Terms []string
	// CollectionFreq, DocFreq, TotalTerms, NumDocs are the global
	// dataset.CorpusStats.
	CollectionFreq []int64
	DocFreq        []int32
	TotalTerms     int64
	NumDocs        int32
	// Space is the global object MBR as {MinX, MinY, MaxX, MaxY}.
	Space [4]float64
	// MaxW is the model's per-term maximum weight over the global corpus
	// (the UB machinery's only object-derived state).
	MaxW []float64
}

// FrozenCorpus extracts the index's frozen global context for shard
// builds.
func (ix *Index) FrozenCorpus() FrozenCorpus {
	sn := ix.acquire()
	defer sn.tree.Unpin()
	ds := sn.tree.Dataset()
	n := len(ds.Stats.CollectionFreq) // build-time vocabulary size
	fc := FrozenCorpus{
		Terms:          make([]string, n),
		CollectionFreq: append([]int64(nil), ds.Stats.CollectionFreq...),
		DocFreq:        append([]int32(nil), ds.Stats.DocFreq...),
		TotalTerms:     ds.Stats.TotalTerms,
		NumDocs:        ds.Stats.NumDocs,
		Space:          [4]float64{ds.Space.Min.X, ds.Space.Min.Y, ds.Space.Max.X, ds.Space.Max.Y},
		MaxW:           textrel.MaxWeights(ix.model, n),
	}
	for id := 0; id < n; id++ {
		fc.Terms[id] = sn.vocab.Term(vocab.TermID(id))
	}
	return fc
}

// FrozenCorpusOf computes a dataset's frozen global context directly —
// statistics, space, and model maxima, with no tree build — so a shard
// process can derive the context from the raw dataset without ever
// materializing the global index. The result is identical to building
// the global index with the same options and calling Index.FrozenCorpus:
// both construct the model through the one shared path.
func FrozenCorpusOf(ds *dataset.Dataset, opts Options) (FrozenCorpus, error) {
	if err := opts.Validate(); err != nil {
		return FrozenCorpus{}, err
	}
	if len(ds.Objects) == 0 {
		return FrozenCorpus{}, fmt.Errorf("maxbrstknn: empty dataset")
	}
	model := opts.newModel(ds)
	n := len(ds.Stats.CollectionFreq)
	fc := FrozenCorpus{
		Terms:          make([]string, n),
		CollectionFreq: append([]int64(nil), ds.Stats.CollectionFreq...),
		DocFreq:        append([]int32(nil), ds.Stats.DocFreq...),
		TotalTerms:     ds.Stats.TotalTerms,
		NumDocs:        ds.Stats.NumDocs,
		Space:          [4]float64{ds.Space.Min.X, ds.Space.Min.Y, ds.Space.Max.X, ds.Space.Max.Y},
		MaxW:           textrel.MaxWeights(model, n),
	}
	for id := 0; id < n; id++ {
		fc.Terms[id] = ds.Vocab.Term(vocab.TermID(id))
	}
	return fc, nil
}

// ShardBuilder accumulates one shard's slice of the global object set
// before building a ShardIndex under a frozen global corpus context.
type ShardBuilder struct {
	frozen  FrozenCorpus
	vocab   *vocab.Vocabulary
	objects []dataset.Object
	gids    []int32
}

// NewShardBuilder returns an empty builder for one shard of the corpus
// frozen in fc.
func NewShardBuilder(fc FrozenCorpus) *ShardBuilder {
	v := vocab.New()
	for _, t := range fc.Terms {
		v.Add(t)
	}
	return &ShardBuilder{frozen: fc, vocab: v}
}

// AddObject registers one global object in this shard. globalID is the
// object's id in the global index; every keyword must belong to the
// frozen vocabulary (shard inputs are a split of the global dataset, so
// an unknown keyword is a split bug, not data). Objects may arrive in any
// order — Build sorts them by global id.
func (b *ShardBuilder) AddObject(globalID int, x, y float64, keywords ...string) error {
	if globalID < 0 {
		return fmt.Errorf("maxbrstknn: negative global object id %d", globalID)
	}
	terms := make([]vocab.TermID, len(keywords))
	for i, kw := range keywords {
		id, ok := b.vocab.Lookup(kw)
		if !ok {
			return fmt.Errorf("maxbrstknn: shard keyword %q not in the frozen vocabulary", kw)
		}
		terms[i] = id
	}
	b.gids = append(b.gids, int32(globalID))
	b.objects = append(b.objects, dataset.Object{
		Loc: geo.Point{X: x, Y: y},
		Doc: vocab.DocFromTerms(terms),
	})
	return nil
}

// Len returns the number of objects added so far.
func (b *ShardBuilder) Len() int { return len(b.objects) }

// Build constructs the shard index. The shard's dataset carries the
// frozen global statistics and space instead of recomputed local ones
// (the same injection Compact performs), and the relevance model is
// rebuilt frozen — so every score, normalizer, and upper bound matches
// the global index bit for bit. Objects get local dense ids in ascending
// global-id order: local tie-breaks (always ascending object id) then
// order exactly like global ones, which is what makes coordinator-side
// top-k merges exact.
func (b *ShardBuilder) Build(opts Options) (*ShardIndex, error) {
	if len(b.objects) == 0 {
		return nil, fmt.Errorf("maxbrstknn: no objects added to shard")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	order := make([]int, len(b.objects))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return b.gids[order[i]] < b.gids[order[j]] })
	objects := make([]dataset.Object, len(order))
	gids := make([]int32, len(order))
	for li, oi := range order {
		if li > 0 && b.gids[oi] == gids[li-1] {
			return nil, fmt.Errorf("maxbrstknn: duplicate global object id %d in shard", b.gids[oi])
		}
		objects[li] = b.objects[oi]
		objects[li].ID = int32(li)
		gids[li] = b.gids[oi]
	}
	// The index owns a private vocabulary copy (identical ids), like
	// Builder.Build.
	v := vocab.New()
	for _, t := range b.frozen.Terms {
		v.Add(t)
	}
	ds := &dataset.Dataset{
		Objects: objects,
		Vocab:   v,
		Stats: dataset.CorpusStats{
			CollectionFreq: append([]int64(nil), b.frozen.CollectionFreq...),
			DocFreq:        append([]int32(nil), b.frozen.DocFreq...),
			TotalTerms:     b.frozen.TotalTerms,
			NumDocs:        b.frozen.NumDocs,
		},
		Space: geo.Rect{
			Min: geo.Point{X: b.frozen.Space[0], Y: b.frozen.Space[1]},
			Max: geo.Point{X: b.frozen.Space[2], Y: b.frozen.Space[3]},
		},
	}
	model, err := textrel.NewModelFrozen(opts.Measure.kind(), ds, opts.lambda(), b.frozen.MaxW)
	if err != nil {
		return nil, err
	}
	mir := irtree.Build(ds, model, irtree.Config{
		Kind:              irtree.MIRTree,
		Fanout:            opts.fanout(),
		DecodedCacheBytes: opts.decodedCacheBytes(),
		PackedPostings:    opts.PackedPostings,
	})
	return &ShardIndex{Index: newIndex(opts, model, mir, nil, 0, nil), globalIDs: gids}, nil
}

// ShardIndex is an Index over one shard's objects that remembers the
// global id of each local object. It is immutable: the frozen statistics
// and the local→global id map would both desynchronize under mutation,
// so the mutating Index methods are overridden to fail.
type ShardIndex struct {
	*Index
	globalIDs []int32 // local dense id → global id, strictly ascending
}

var errShardImmutable = fmt.Errorf("maxbrstknn: shard indexes are immutable (rebuild the shard instead)")

// AddObject always fails: shard indexes are immutable.
func (six *ShardIndex) AddObject(x, y float64, keywords ...string) (int, error) {
	return 0, errShardImmutable
}

// DeleteObject always fails: shard indexes are immutable.
func (six *ShardIndex) DeleteObject(id int) error { return errShardImmutable }

// UpdateObject always fails: shard indexes are immutable.
func (six *ShardIndex) UpdateObject(id int, x, y float64, keywords ...string) (int, error) {
	return 0, errShardImmutable
}

// GlobalID maps a local object id to its global id.
func (six *ShardIndex) GlobalID(local int) int { return int(six.globalIDs[local]) }

// TopK is Index.TopK with results remapped to global object ids. Scores
// are globally exact (frozen context); the ranking is the shard's local
// top-k, which a coordinator merges across shards by (score descending,
// global id ascending) to recover the global list.
func (six *ShardIndex) TopK(x, y float64, keywords []string, k int) ([]RankedObject, error) {
	out, err := six.Index.TopK(x, y, keywords, k)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i].ObjectID = int(six.globalIDs[out[i].ObjectID])
	}
	return out, nil
}

// ShardSession is a session over one shard for coordinator-driven
// scatter-gather serving. Unlike a Session it prepares no thresholds of
// its own: phase 1 runs on demand with coordinator-forwarded score seeds
// (Phase1), and phase 2 runs under coordinator-supplied global
// thresholds (Scatter). It pins the shard's snapshot exactly like a
// Session and is safe for concurrent Phase1/Scatter calls.
type ShardSession struct {
	s  *Session
	ix *ShardIndex
}

// NewShardSession builds a shard session for one user cohort. The cohort
// must be the full, identically-ordered user list every shard of the
// deployment sees: user indexes in results and threshold vectors are
// cohort positions, and they must agree across shards and coordinator.
func (six *ShardIndex) NewShardSession(users []UserSpec, k int) (*ShardSession, error) {
	s, err := six.Index.newSession(users, k)
	if err != nil {
		return nil, err
	}
	return &ShardSession{s: s, ix: six}, nil
}

// Close releases the session's snapshot pin.
func (ss *ShardSession) Close() error { return ss.s.Close() }

// ShardPhase1 is one shard's joint top-k answer: each cohort user's
// local top-k over the shard's objects (global ids, score descending with
// ascending-id tie-breaks) plus the shard's work counters. Visited is
// tree nodes expanded by the group traversals; Refined is candidates
// actually scored during per-user refinement — the counter where bound
// forwarding shows up, since a seeded threshold truncates each
// descending-UB candidate scan earlier.
type ShardPhase1 struct {
	PerUser [][]RankedObject
	Visited int
	Refined int
}

// Phase1 computes every cohort user's top-k over this shard's objects.
// seeds[u] (optional — nil means no bounds known) is a lower bound on
// user u's global k-th best score, established by the coordinator from
// shards that already answered; the shard's traversals and refinements
// prune below it, losslessly for the merged global top-k. Merging all
// shards' lists per user by (score descending, global id ascending) and
// keeping k reproduces the single-index lists and thresholds exactly.
func (ss *ShardSession) Phase1(seeds []float64, opts ParallelOptions) (ShardPhase1, error) {
	if err := ss.s.checkOpen("Phase1"); err != nil {
		return ShardPhase1{}, err
	}
	if seeds == nil {
		seeds = make([]float64, len(ss.s.users))
	}
	if len(seeds) != len(ss.s.users) {
		return ShardPhase1{}, fmt.Errorf("maxbrstknn: %d seeds for %d users", len(seeds), len(ss.s.users))
	}
	po := opts.core().Normalize()
	res, err := topk.JointTopKParallelSeeded(ss.s.snap.tree, ss.s.engine.Scorer, ss.s.users, ss.s.k, po.Workers, po.Groups, seeds)
	if err != nil {
		return ShardPhase1{}, err
	}
	out := ShardPhase1{PerUser: make([][]RankedObject, len(res.PerUser)), Visited: res.Visited, Refined: res.Refined}
	for i, p := range res.PerUser {
		rs := make([]RankedObject, len(p.Results))
		for j, r := range p.Results {
			rs[j] = RankedObject{ObjectID: int(ss.ix.globalIDs[r.ObjID]), Score: r.Score}
		}
		out.PerUser[i] = rs
	}
	return out, nil
}

// MergeTopK folds per-shard ranked lists (as Phase1 and ShardIndex.TopK
// return them) into the global top-k: sort by score descending with
// ascending global-id tie-breaks, keep k. Because every shard list is
// its shard's exact local top-k under the same order, the merge equals
// the single-index list whenever that order is the single index's —
// which it is for Phase1 always, and for TopK when scores are distinct.
func MergeTopK(k int, lists ...[]RankedObject) []RankedObject {
	var all []RankedObject
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ObjectID < all[j].ObjectID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// ThresholdFromMerged returns RSk(u) — the prepared phase-2 threshold —
// from a user's merged global top-k list: the k-th best score when the
// list is full, and the same "nothing qualifies yet" sentinel the
// single-index refinement heap reports otherwise.
func ThresholdFromMerged(merged []RankedObject, k int) float64 {
	if len(merged) >= k {
		return merged[k-1].Score
	}
	return -math.MaxFloat64
}

// ShardCandidate is one evaluated candidate location a shard returns from
// Scatter: the answer in facade terms plus |LU_ℓ|, the qualifying-user
// count that orders the scan the coordinator replays.
type ShardCandidate struct {
	Result Result
	LU     int
}

// ScatterStats re-exports the phase-2 work counters of a Scatter call.
type ScatterStats = core.ScatterStats

// Scatter evaluates this shard's assigned candidate locations for one
// request, under coordinator-supplied global per-user thresholds rsk
// (cohort-indexed, from ThresholdFromMerged). list selects the top-l
// evaluation body (RunTopL's) instead of the single-best one (Run's).
// floor is the bound forwarded from shards that already answered — the
// best count achieved so far; candidates that provably cannot beat it
// are skipped (best mode only; see core.ScatterSelect for why the top-l
// replay must see every positive candidate).
//
// Replaying the single-index scan over the union of all shards'
// candidates reproduces Run / RunTopL byte for byte; phase 2 reads only
// model state and the thresholds — never the shard's object tree — so
// location→shard assignment is pure load balancing.
func (ss *ShardSession) Scatter(req Request, rsk []float64, assigned []int, floor int, list bool) ([]ShardCandidate, ScatterStats, error) {
	var stats ScatterStats
	if err := ss.s.checkOpen("Scatter"); err != nil {
		return nil, stats, err
	}
	if req.K != ss.s.k {
		return nil, stats, errKMismatch(req.K, ss.s.k)
	}
	var mode core.ScatterMode
	var method core.KeywordMethod
	switch req.Strategy {
	case Exact:
		mode, method = core.ScatterBest, core.KeywordsExact
	case Approx:
		mode, method = core.ScatterBest, core.KeywordsApprox
	case Exhaustive:
		if list {
			return nil, stats, fmt.Errorf("maxbrstknn: top-l does not support the %s strategy", req.Strategy)
		}
		mode, method = core.ScatterExhaustive, core.KeywordsExact
	case UserIndexed:
		// Section 7 prunes with a per-shard user tree whose bounds are
		// not comparable across shards; a coordinator routes it to a
		// single index instead.
		return nil, stats, fmt.Errorf("maxbrstknn: the %s strategy cannot be scattered", req.Strategy)
	default:
		return nil, stats, fmt.Errorf("maxbrstknn: unknown strategy %d", int(req.Strategy))
	}
	if list {
		mode = core.ScatterTopL
	}
	eng, err := ss.s.engine.WithThresholds(ss.s.k, rsk)
	if err != nil {
		return nil, stats, err
	}
	q, err := ss.s.buildQuery(req)
	if err != nil {
		return nil, stats, err
	}
	cands, stats, err := eng.ScatterSelect(q, method, mode, assigned, floor, req.Parallel.core().Normalize().Workers)
	if err != nil {
		return nil, stats, err
	}
	out := make([]ShardCandidate, len(cands))
	for i, c := range cands {
		out[i] = ShardCandidate{Result: ss.s.buildResult(req, c.Sel, core.UserIndexStats{}), LU: c.LU}
	}
	return out, stats, nil
}
