package maxbrstknn

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// ingestWords is the keyword pool the ingest tests draw from; fresh
// per-mutation keywords are added on top to grow the vocabulary past the
// build-time fence.
var ingestWords = []string{"a", "b", "c", "d", "e", "f", "g", "h"}

// applyIngestScript drives a deterministic mix of AddObject /
// DeleteObject / UpdateObject against idx: fresh keywords, deletes of
// both build-time and ingested objects, updates that re-home an object
// under a new id. Returns the number of live objects it expects.
func applyIngestScript(t *testing.T, idx *Index, seed int64) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var live []int
	for i := 0; i < idx.NumObjects(); i++ {
		live = append(live, i)
	}
	for i := 0; i < 80; i++ {
		switch {
		case i%5 == 3 && len(live) > 8: // delete a random live object
			j := rng.Intn(len(live))
			if err := idx.DeleteObject(live[j]); err != nil {
				t.Fatalf("delete %d: %v", live[j], err)
			}
			live = append(live[:j], live[j+1:]...)
		case i%7 == 5 && len(live) > 0: // update a random live object
			j := rng.Intn(len(live))
			nid, err := idx.UpdateObject(live[j], rng.Float64()*10, rng.Float64()*10,
				ingestWords[rng.Intn(len(ingestWords))], fmt.Sprintf("upd%d", i))
			if err != nil {
				t.Fatalf("update %d: %v", live[j], err)
			}
			live[j] = nid
		default:
			kws := []string{ingestWords[rng.Intn(len(ingestWords))]}
			if i%4 == 0 {
				kws = append(kws, fmt.Sprintf("ingest%d", i))
			}
			id, err := idx.AddObject(rng.Float64()*10, rng.Float64()*10, kws...)
			if err != nil {
				t.Fatalf("add: %v", err)
			}
			live = append(live, id)
		}
	}
	return len(live)
}

// idRemap returns the dense order-preserving old-id → compacted-id map
// the Compact contract documents.
func idRemap(idx *Index) map[int]int {
	sn := idx.snap.Load()
	m := make(map[int]int, sn.live)
	next := 0
	for id := 0; id < len(sn.tree.Dataset().Objects); id++ {
		if !sn.isDeleted(int32(id)) {
			m[id] = next
			next++
		}
	}
	return m
}

// assertAnswersMatchCompact is the standing invariant of the snapshot
// design: idx must answer identically to a from-scratch batch build over
// its live object set, for every strategy and every ParallelOptions
// setting. Top-k lists are compared through the documented dense id
// remap with exact score equality.
func assertAnswersMatchCompact(t *testing.T, idx *Index, req Request) {
	t.Helper()
	compact, err := idx.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if compact.NumObjects() != idx.NumObjects() {
		t.Fatalf("compact has %d objects, original %d", compact.NumObjects(), idx.NumObjects())
	}

	remap := idRemap(idx)
	rng := rand.New(rand.NewSource(999))
	for i := 0; i < 10; i++ {
		x, y := rng.Float64()*10, rng.Float64()*10
		kws := []string{ingestWords[rng.Intn(len(ingestWords))], ingestWords[rng.Intn(len(ingestWords))]}
		a, err := idx.TopK(x, y, kws, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := compact.TopK(x, y, kws, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("TopK(%v): %d results vs compact %d", kws, len(a), len(b))
		}
		for r := range a {
			if remap[a[r].ObjectID] != b[r].ObjectID || a[r].Score != b[r].Score {
				t.Fatalf("TopK(%v) rank %d: (%d→%d, %v) vs compact (%d, %v)",
					kws, r, a[r].ObjectID, remap[a[r].ObjectID], a[r].Score, b[r].ObjectID, b[r].Score)
			}
		}
	}

	for _, strat := range []Strategy{Exact, Approx, Exhaustive, UserIndexed} {
		for _, par := range []ParallelOptions{{}, {Workers: 2}, {Workers: 4, Groups: 8}} {
			r := req
			r.Strategy, r.Parallel = strat, par
			a, err := idx.MaxBRSTkNN(r)
			if err != nil {
				t.Fatalf("%v/%+v: %v", strat, par, err)
			}
			b, err := compact.MaxBRSTkNN(r)
			if err != nil {
				t.Fatalf("%v/%+v compact: %v", strat, par, err)
			}
			// Pruning statistics may differ (the rebuilt tree has another
			// shape); the answer must not.
			a.Stats, b.Stats = PruningStats{}, PruningStats{}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%v/%+v: ingested answer %+v != batch rebuild %+v", strat, par, a, b)
			}
		}
	}
}

// TestIngestOracleBuiltAndLoaded mutates a built index through the full
// Add/Delete/Update surface, pins the batch-build equivalence oracle,
// then round-trips the mutated index through Save/Load and pins the
// oracle again on the loaded side — deletions must persist, answers must
// be byte-identical between the built and loaded indexes.
func TestIngestOracleBuiltAndLoaded(t *testing.T) {
	idx, req := stressInstance(t)
	wantLive := applyIngestScript(t, idx, 21)
	if got := idx.NumObjects(); got != wantLive {
		t.Fatalf("NumObjects = %d, script expects %d", got, wantLive)
	}
	assertAnswersMatchCompact(t, idx, req)

	path := filepath.Join(t.TempDir(), "ingested.mxbr")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if got := loaded.NumObjects(); got != wantLive {
		t.Fatalf("loaded NumObjects = %d, want %d (deletions must persist)", got, wantLive)
	}
	if loaded.Epoch() != 0 {
		t.Fatalf("loaded epoch = %d, want a fresh counter", loaded.Epoch())
	}

	// Byte-identity between built and loaded answers (ids included).
	for _, strat := range []Strategy{Exact, Approx, Exhaustive, UserIndexed} {
		r := req
		r.Strategy = strat
		a, err := idx.MaxBRSTkNN(r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.MaxBRSTkNN(r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: loaded answer %+v != built %+v", strat, b, a)
		}
	}

	// The loaded index keeps mutating and still matches its batch build.
	if _, err := loaded.AddObject(4, 4, "a", "post-load"); err != nil {
		t.Fatal(err)
	}
	if err := loaded.DeleteObject(0); err != nil && !errors.Is(err, ErrNoSuchObject) {
		t.Fatal(err)
	}
	assertAnswersMatchCompact(t, loaded, req)
}

// TestAddObjectAllOrNothing is the regression test for the dirty error
// path the RWMutex-era AddObject had: terms were added to the vocabulary
// before the insert, so a failed insert left the vocabulary mutated.
// Driving an insert into a backend whose file is closed must leave no
// trace: same snapshot pointer, same vocabulary size, same epoch.
func TestAddObjectAllOrNothing(t *testing.T) {
	idx, _ := stressInstance(t)
	path := filepath.Join(t.TempDir(), "ao.mxbr")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	// Caches off: the insert's first node read must hit the (closed) file.
	loaded, err := LoadWithOptions(path, LoadOptions{CacheCapacity: -1, DecodedCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Close(); err != nil {
		t.Fatal(err)
	}

	snapBefore := loaded.snap.Load()
	vocabBefore := loaded.wvocab.Size()
	objectsBefore := loaded.NumObjects()

	if _, err := loaded.AddObject(1, 1, "a", "never-seen-term"); err == nil {
		t.Fatal("AddObject against a closed backend should fail")
	}
	if loaded.snap.Load() != snapBefore {
		t.Error("failed AddObject published a snapshot")
	}
	if got := loaded.wvocab.Size(); got != vocabBefore {
		t.Errorf("failed AddObject left vocabulary at %d terms, want %d (rollback)", got, vocabBefore)
	}
	if got := loaded.NumObjects(); got != objectsBefore {
		t.Errorf("failed AddObject changed NumObjects: %d != %d", got, objectsBefore)
	}
	if loaded.Epoch() != 0 {
		t.Errorf("failed AddObject advanced the epoch to %d", loaded.Epoch())
	}

	// Same all-or-nothing contract for UpdateObject.
	if _, err := loaded.UpdateObject(0, 2, 2, "another-fresh-term"); err == nil {
		t.Fatal("UpdateObject against a closed backend should fail")
	}
	if got := loaded.wvocab.Size(); got != vocabBefore {
		t.Errorf("failed UpdateObject left vocabulary at %d terms, want %d", got, vocabBefore)
	}
	if loaded.snap.Load() != snapBefore {
		t.Error("failed UpdateObject published a snapshot")
	}
}

// TestIngestRaceStress shares one index between 16 goroutines running
// sustained inserts, deletes, one-shot queries across every strategy,
// and session builds — the `go test -race` workout of the lock-free
// reader path. After the storm settles, the batch-build oracle must
// still hold.
func TestIngestRaceStress(t *testing.T) {
	idx, req := stressInstance(t)
	strategies := []Strategy{Exact, Approx, Exhaustive, UserIndexed}

	const goroutines = 16
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	var idMu sync.Mutex
	var added []int

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 6; i++ {
				switch g % 4 {
				case 0: // writer: insert, sometimes delete an earlier insert
					id, err := idx.AddObject(rng.Float64()*10, rng.Float64()*10,
						ingestWords[rng.Intn(len(ingestWords))], fmt.Sprintf("race%d-%d", g, i))
					if err != nil {
						errc <- fmt.Errorf("writer %d: %w", g, err)
						return
					}
					idMu.Lock()
					added = append(added, id)
					var victim = -1
					if i%2 == 1 && len(added) > 0 {
						j := rng.Intn(len(added))
						victim = added[j]
						added = append(added[:j], added[j+1:]...)
					}
					idMu.Unlock()
					if victim >= 0 {
						if err := idx.DeleteObject(victim); err != nil && !errors.Is(err, ErrNoSuchObject) {
							errc <- fmt.Errorf("deleter %d: %w", g, err)
							return
						}
					}
				case 1: // one-shot top-k reader
					res, err := idx.TopK(rng.Float64()*10, rng.Float64()*10, []string{"a", "b"}, 3)
					if err != nil {
						errc <- fmt.Errorf("topk %d: %w", g, err)
						return
					}
					if len(res) == 0 {
						errc <- fmt.Errorf("topk %d: empty result", g)
						return
					}
				case 2: // one-shot MaxBRSTkNN, rotating strategies
					r := req
					r.Strategy = strategies[(g+i)%len(strategies)]
					r.Parallel = ParallelOptions{Workers: 1 + g%3}
					if _, err := idx.MaxBRSTkNN(r); err != nil {
						errc <- fmt.Errorf("query %d %v: %w", g, r.Strategy, err)
						return
					}
				default: // session builder: pin a snapshot, run on it
					s, err := idx.NewSession(req.Users, req.K)
					if err != nil {
						errc <- fmt.Errorf("session %d: %w", g, err)
						return
					}
					r := req
					r.Strategy = strategies[i%len(strategies)]
					if _, err := s.Run(r); err != nil {
						errc <- fmt.Errorf("session run %d %v: %w", g, r.Strategy, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}

	st := idx.IngestStats()
	if st.Epoch == 0 || st.RetiredRecords == 0 {
		t.Fatalf("stress run published nothing: %+v", st)
	}
	if st.LiveObjects != idx.NumObjects() {
		t.Fatalf("ingest stats live %d != NumObjects %d", st.LiveObjects, idx.NumObjects())
	}
	assertAnswersMatchCompact(t, idx, req)
}
