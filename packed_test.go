package maxbrstknn

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
)

// buildPair builds two indexes over identical data: one flat, one with
// block-max packed postings. Every query must answer byte-identically on
// both — the packed codec and its skip pruning are lossless by contract.
func buildPair(t *testing.T, n int) (flat, packed *Index) {
	t.Helper()
	words := []string{"sushi", "ramen", "taco", "kebab", "pasta", "curry", "pho", "bagel"}
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddObject(rng.Float64()*10, rng.Float64()*10,
			words[rng.Intn(len(words))], words[rng.Intn(len(words))], words[rng.Intn(len(words))])
	}
	var err error
	if flat, err = b.Build(Options{}); err != nil {
		t.Fatal(err)
	}
	if packed, err = b.Build(Options{PackedPostings: true}); err != nil {
		t.Fatal(err)
	}
	return flat, packed
}

func comparePair(t *testing.T, flat, packed *Index, label string) {
	t.Helper()
	words := []string{"sushi", "taco", "pho", "bagel"}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 12; i++ {
		x, y := rng.Float64()*10, rng.Float64()*10
		kws := []string{words[i%len(words)], words[(i+1)%len(words)]}
		want, err := flat.TopK(x, y, kws, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := packed.TopK(x, y, kws, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: TopK(%v,%v,%v) differs:\n flat   %v\n packed %v", label, x, y, kws, want, got)
		}
	}
	req := Request{
		Users: []UserSpec{
			{X: 1, Y: 1, Keywords: []string{"sushi", "pho"}},
			{X: 8, Y: 3, Keywords: []string{"taco"}},
			{X: 4, Y: 7, Keywords: []string{"bagel", "curry"}},
		},
		Locations:   [][2]float64{{2, 2}, {5, 5}, {8, 8}},
		Keywords:    []string{"sushi", "taco", "pho", "curry"},
		MaxKeywords: 2,
		K:           3,
	}
	want, err := flat.MaxBRSTkNN(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := packed.MaxBRSTkNN(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: MaxBRSTkNN differs:\n flat   %+v\n packed %+v", label, want, got)
	}
}

func TestPackedPostingsEquivalence(t *testing.T) {
	flat, packed := buildPair(t, 300)
	comparePair(t, flat, packed, "built")
}

// Mutations must preserve equivalence: inserts re-encode touched nodes'
// inverted files through the packed encoder.
func TestPackedPostingsEquivalenceUnderMutation(t *testing.T) {
	flat, packed := buildPair(t, 200)
	for _, ix := range []*Index{flat, packed} {
		if _, err := ix.AddObject(3.3, 4.4, "sushi", "durian"); err != nil {
			t.Fatal(err)
		}
		if err := ix.DeleteObject(5); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.UpdateObject(17, 9.1, 0.4, "taco", "pho"); err != nil {
			t.Fatal(err)
		}
	}
	comparePair(t, flat, packed, "mutated")
}

// A packed index must round-trip through Save/Load: the codec flag rides
// in the tree metadata (master record v3) and Load restores a tree that
// keeps answering identically and keeps writing packed postings.
func TestPackedPostingsSaveLoad(t *testing.T) {
	flat, packed := buildPair(t, 250)
	path := filepath.Join(t.TempDir(), "packed.mxbr")
	if err := packed.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if !loaded.snap.Load().tree.PackedPostings() {
		t.Fatal("loaded index lost the packed-postings flag")
	}
	if !loaded.opts.PackedPostings {
		t.Fatal("loaded Options lost the packed-postings flag (Compact would rebuild flat)")
	}
	comparePair(t, flat, loaded, "loaded")
}
