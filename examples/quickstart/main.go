// Quickstart: build a tiny index, ask where to place a new object and
// which keywords to give it so it enters the most users' top-k.
package main

import (
	"fmt"
	"log"

	maxbrstknn "repro"
)

func main() {
	// Index the existing objects (the competition).
	b := maxbrstknn.NewBuilder()
	b.AddObject(1.0, 1.0, "sushi")
	b.AddObject(4.0, 2.0, "noodles")
	b.AddObject(2.0, 3.0, "coffee", "cake")
	idx, err := b.Build(maxbrstknn.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The users we want to reach.
	users := []maxbrstknn.UserSpec{
		{X: 0.5, Y: 0.5, Keywords: []string{"sushi", "seafood"}},
		{X: 1.5, Y: 1.0, Keywords: []string{"sushi"}},
		{X: 3.5, Y: 2.0, Keywords: []string{"noodles"}},
		{X: 2.0, Y: 2.5, Keywords: []string{"coffee"}},
	}

	// Where could we open, and what could we offer?
	res, err := idx.MaxBRSTkNN(maxbrstknn.Request{
		Users:       users,
		Locations:   [][2]float64{{1.1, 0.9}, {3.8, 1.8}, {2.2, 2.8}},
		Keywords:    []string{"sushi", "seafood", "noodles", "coffee"},
		MaxKeywords: 2,
		K:           1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("open at location #%d (%.1f, %.1f)\n",
		res.LocationIndex, res.Location[0], res.Location[1])
	fmt.Printf("offer: %v\n", res.Keywords)
	fmt.Printf("becomes a top-1 choice for %d of %d users: %v\n",
		res.Count(), len(users), res.UserIDs)

	// The per-user top-k machinery is available directly too.
	top, err := idx.TopK(0.5, 0.5, []string{"sushi"}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-2 for a sushi fan at (0.5,0.5): %v\n", top)
}
