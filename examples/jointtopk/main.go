// Joint top-k — the paper's "independent interest" contribution
// (Section 5) in isolation.
//
// Computing the top-k spatial-textual objects for a batch of users one at
// a time re-reads the same index pages over and over. The joint algorithm
// groups the batch behind a super-user, traverses the MIR-tree once, and
// refines per user in memory. This example measures both on the same
// workload and prints the simulated-I/O ratio.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	maxbrstknn "repro"
)

var topics = []string{"a", "b", "c", "d", "e", "f", "g", "h"}

func main() {
	rng := rand.New(rand.NewSource(99))

	b := maxbrstknn.NewBuilder()
	for i := 0; i < 3000; i++ {
		kws := []string{topics[rng.Intn(len(topics))], topics[rng.Intn(len(topics))]}
		b.AddObject(rng.Float64()*50, rng.Float64()*50, kws...)
	}
	// This example demonstrates the paper's simulated-I/O comparison, so
	// disable the decoded-object cache: with it on (the default), repeat
	// visits charge no I/O and both counters below would collapse to the
	// first traversal's charges.
	idx, err := b.Build(maxbrstknn.Options{DecodedCacheBytes: -1})
	if err != nil {
		log.Fatal(err)
	}

	users := make([]maxbrstknn.UserSpec, 250)
	for i := range users {
		users[i] = maxbrstknn.UserSpec{
			X: 20 + rng.Float64()*10, Y: 20 + rng.Float64()*10,
			Keywords: []string{topics[rng.Intn(len(topics))]},
		}
	}
	const k = 10

	// One at a time.
	idx.ResetIO()
	start := time.Now()
	for _, u := range users {
		if _, err := idx.TopK(u.X, u.Y, u.Keywords, k); err != nil {
			log.Fatal(err)
		}
	}
	soloMs := float64(time.Since(start).Microseconds()) / 1000
	soloIO := idx.SimulatedIO()

	// Jointly.
	session, err := idx.NewSession(users, k) // runs the joint computation
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	idx.ResetIO()
	start = time.Now()
	all, err := session.JointTopKAll()
	if err != nil {
		log.Fatal(err)
	}
	jointMs := float64(time.Since(start).Microseconds()) / 1000
	jointIO := idx.SimulatedIO()

	fmt.Printf("users=%d, k=%d, objects=%d\n", len(users), k, idx.NumObjects())
	fmt.Printf("per-user: %8.1f ms  %6d simulated I/O\n", soloMs, soloIO)
	fmt.Printf("joint:    %8.1f ms  %6d simulated I/O  (%.1fx less I/O)\n",
		jointMs, jointIO, float64(soloIO)/float64(jointIO))

	// Spot-check agreement on one user.
	u := users[0]
	solo, err := idx.TopK(u.X, u.Y, u.Keywords, k)
	if err != nil {
		log.Fatal(err)
	}
	agree := len(solo) == len(all[0])
	for i := range solo {
		if agree && solo[i].Score != all[0][i].Score {
			agree = false
		}
	}
	fmt.Printf("user 0 results agree between methods: %v\n", agree)
}
