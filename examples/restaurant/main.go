// Restaurant placement — the paper's Example 2 at city scale.
//
// A restaurateur scouting a city wants the street corner and the menu
// (at most ws dishes) that make the new restaurant a top-k choice for the
// most residents, given the existing competition. This example generates a
// synthetic city of restaurants and residents, runs all three strategies,
// and compares their answers and runtimes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	maxbrstknn "repro"
)

var dishes = []string{
	"sushi", "seafood", "noodles", "pizza", "burger", "tacos",
	"curry", "ramen", "salad", "steak", "dumplings", "pho",
}

func main() {
	rng := rand.New(rand.NewSource(42))

	// The competition: 400 restaurants clustered around 5 food districts.
	centers := [][2]float64{{2, 2}, {8, 3}, {5, 5}, {2, 8}, {8, 8}}
	b := maxbrstknn.NewBuilder()
	for i := 0; i < 400; i++ {
		c := centers[rng.Intn(len(centers))]
		menu := make([]string, 1+rng.Intn(3))
		for j := range menu {
			menu[j] = dishes[rng.Intn(len(dishes))]
		}
		b.AddObject(c[0]+rng.NormFloat64()*0.8, c[1]+rng.NormFloat64()*0.8, menu...)
	}
	idx, err := b.Build(maxbrstknn.Options{Measure: maxbrstknn.LanguageModel})
	if err != nil {
		log.Fatal(err)
	}

	// Residents with food preferences.
	users := make([]maxbrstknn.UserSpec, 300)
	for i := range users {
		c := centers[rng.Intn(len(centers))]
		prefs := []string{dishes[rng.Intn(len(dishes))]}
		if rng.Intn(2) == 0 {
			prefs = append(prefs, dishes[rng.Intn(len(dishes))])
		}
		users[i] = maxbrstknn.UserSpec{
			X: c[0] + rng.NormFloat64(), Y: c[1] + rng.NormFloat64(), Keywords: prefs,
		}
	}

	// Available lots across the city.
	locations := make([][2]float64, 12)
	for i := range locations {
		locations[i] = [2]float64{rng.Float64() * 10, rng.Float64() * 10}
	}

	req := maxbrstknn.Request{
		Users:       users,
		Locations:   locations,
		Keywords:    dishes,
		MaxKeywords: 3,
		K:           3, // "a top-3 restaurant"
	}

	session, err := idx.NewSession(users, req.K)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	for _, strat := range []maxbrstknn.Strategy{maxbrstknn.Exact, maxbrstknn.Approx, maxbrstknn.UserIndexed} {
		req.Strategy = strat
		start := time.Now()
		var res maxbrstknn.Result
		if strat == maxbrstknn.UserIndexed {
			// user-indexed runs its own threshold computation
			res, err = idx.MaxBRSTkNN(req)
		} else {
			res, err = session.Run(req)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s lot #%-2d  menu %-28s reaches %3d residents  (%.1f ms)\n",
			strat, res.LocationIndex, strings.Join(res.Keywords, "+"), res.Count(),
			float64(time.Since(start).Microseconds())/1000)
		if strat == maxbrstknn.UserIndexed && res.Stats.TotalUsers > 0 {
			fmt.Printf("%-12s top-k avoided for %.1f%% of residents\n", "", res.Stats.PrunedPercent)
		}
	}
}
