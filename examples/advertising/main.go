// Social-media advertising — the paper's Example 1.
//
// Each user sees only their k most relevant advertisements (by location
// and interests). An advertiser with an existing brand line wants to pick
// a geo-target and up to ws extra keywords so the ad is displayed to the
// maximum number of users. This example also shows how a Session amortizes
// the expensive per-user threshold computation across several candidate
// campaigns, and how shrinking k (fewer ad slots) shrinks the reachable
// audience.
package main

import (
	"fmt"
	"log"
	"math/rand"

	maxbrstknn "repro"
)

var interests = []string{
	"sneakers", "fitness", "gaming", "travel", "vegan",
	"music", "fashion", "photography", "coffee", "cycling",
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// Competing advertisements already in the auction.
	b := maxbrstknn.NewBuilder()
	for i := 0; i < 500; i++ {
		kws := make([]string, 1+rng.Intn(3))
		for j := range kws {
			kws[j] = interests[rng.Intn(len(interests))]
		}
		b.AddObject(rng.Float64()*100, rng.Float64()*100, kws...)
	}
	idx, err := b.Build(maxbrstknn.Options{Measure: maxbrstknn.TFIDF, Alpha: 0.4})
	if err != nil {
		log.Fatal(err)
	}

	// The audience.
	users := make([]maxbrstknn.UserSpec, 400)
	for i := range users {
		users[i] = maxbrstknn.UserSpec{
			X: rng.Float64() * 100, Y: rng.Float64() * 100,
			Keywords: []string{
				interests[rng.Intn(len(interests))],
				interests[rng.Intn(len(interests))],
			},
		}
	}

	// Candidate geo-targets (ad-region anchors).
	targets := make([][2]float64, 8)
	for i := range targets {
		targets[i] = [2]float64{rng.Float64() * 100, rng.Float64() * 100}
	}

	for _, k := range []int{5, 3, 1} {
		session, err := idx.NewSession(users, k)
		if err != nil {
			log.Fatal(err)
		}
		defer session.Close()
		// Campaign A: broad keyword budget.
		broad, err := session.Run(maxbrstknn.Request{
			Locations:        targets,
			Keywords:         interests,
			MaxKeywords:      3,
			K:                k,
			ExistingKeywords: []string{"sneakers"}, // the brand line
			Strategy:         maxbrstknn.Approx,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Campaign B: single extra keyword, same thresholds reused.
		narrow, err := session.Run(maxbrstknn.Request{
			Locations:        targets,
			Keywords:         interests,
			MaxKeywords:      1,
			K:                k,
			ExistingKeywords: []string{"sneakers"},
			Strategy:         maxbrstknn.Approx,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%d  broad: target #%d + %v → %d users   narrow: target #%d + %v → %d users\n",
			k, broad.LocationIndex, broad.Keywords, broad.Count(),
			narrow.LocationIndex, narrow.Keywords, narrow.Count())
	}
}
