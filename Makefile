GO ?= go
SMOKEDIR ?= /tmp/maxbrstknn-smoke

.PHONY: all build vet test race bench cli-smoke ci

all: ci

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel query engine is gated on a clean race run.
race:
	$(GO) test -race ./...

# Short benchmark smoke: every benchmark must at least run once.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Save/load CLI smoke: datagen → build a saved index → query it, and
# require the answer to match the in-memory one-shot pipeline. Guards the
# on-disk index format end to end.
cli-smoke:
	rm -rf $(SMOKEDIR) && mkdir -p $(SMOKEDIR)
	$(GO) build -o $(SMOKEDIR)/ ./cmd/...
	cd $(SMOKEDIR) && ./datagen -n 2000 -users 100 -locations 10 -out . >/dev/null
	cd $(SMOKEDIR) && ./maxbrstknn build -data . -out index.mxbr
	cd $(SMOKEDIR) && ./maxbrstknn query -index index.mxbr -data . -ws 2 -k 5 | tee query.out
	cd $(SMOKEDIR) && ./maxbrstknn -data . -ws 2 -k 5 | tee oneshot.out
	cd $(SMOKEDIR) && answer="$$(grep -F '|BRSTkNN|' oneshot.out)" && test -n "$$answer" \
		&& grep -F "$$answer" query.out >/dev/null \
		&& echo "cli-smoke: saved-index answer matches in-memory answer"
	rm -rf $(SMOKEDIR)

ci: build vet race bench cli-smoke
