GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel query engine is gated on a clean race run.
race:
	$(GO) test -race ./...

# Short benchmark smoke: every benchmark must at least run once.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

ci: build vet race bench
