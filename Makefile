GO ?= go
SMOKEDIR ?= /tmp/maxbrstknn-smoke
SERVEDIR ?= /tmp/maxbrstknn-serve-smoke
SERVEADDR ?= 127.0.0.1:18080
INGESTDIR ?= /tmp/maxbrstknn-ingest-smoke
INGESTADDR ?= 127.0.0.1:18081
SHARDDIR ?= /tmp/maxbrstknn-shard-smoke
SHARD0ADDR ?= 127.0.0.1:18083
SHARD1ADDR ?= 127.0.0.1:18084
COORDADDR ?= 127.0.0.1:18085
SINGLEADDR ?= 127.0.0.1:18086

# Static analysis. lint-maxbr runs the project's own analyzer suite
# (cmd/maxbrlint) over the whole tree and fails on any diagnostic — there
# is no baseline file. lint-external adds staticcheck and govulncheck,
# pinned by version and run via `go run` so they never enter go.mod.
# LINT_EXTERNAL=auto (the default) probes the module proxy first and
# skips the external tools offline; CI sets LINT_EXTERNAL=1 to force
# them.
LINT_EXTERNAL ?= auto
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build vet test race bench bench-smoke cli-smoke serve-smoke ingest-smoke shard-smoke fuzz-smoke lint lint-maxbr lint-fix lint-external ci

all: ci

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel query engine is gated on a clean race run.
race:
	$(GO) test -race ./...

# Short benchmark smoke: every benchmark must at least run once.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Hotpath bench smoke: the decoded-cache hot-path experiment at tiny
# scale. It fails on any result-equivalence mismatch between the cold
# (decode-everything) and warm (decoded-cache + scratch) configurations —
# never on timing — keeping the perf code exercised on every push.
bench-smoke:
	$(GO) run ./cmd/benchrunner -exp hotpath -quick

# Save/load CLI smoke: datagen → build a saved index → query it, and
# require the answer to match the in-memory one-shot pipeline. Guards the
# on-disk index format end to end.
cli-smoke:
	rm -rf $(SMOKEDIR) && mkdir -p $(SMOKEDIR)
	$(GO) build -o $(SMOKEDIR)/ ./cmd/...
	cd $(SMOKEDIR) && ./datagen -n 2000 -users 100 -locations 10 -out . >/dev/null
	cd $(SMOKEDIR) && ./maxbrstknn build -data . -out index.mxbr
	cd $(SMOKEDIR) && ./maxbrstknn query -index index.mxbr -data . -ws 2 -k 5 | tee query.out
	cd $(SMOKEDIR) && ./maxbrstknn -data . -ws 2 -k 5 | tee oneshot.out
	cd $(SMOKEDIR) && answer="$$(grep -F '|BRSTkNN|' oneshot.out)" && test -n "$$answer" \
		&& grep -F "$$answer" query.out >/dev/null \
		&& echo "cli-smoke: saved-index answer matches in-memory answer"
	rm -rf $(SMOKEDIR)

# Serving smoke: datagen → saved index → maxbrserve against it, then one
# query per endpoint plus /healthz and /stats. Guards the HTTP serving
# layer end to end against a disk-backed index.
serve-smoke:
	rm -rf $(SERVEDIR) && mkdir -p $(SERVEDIR)
	$(GO) build -o $(SERVEDIR)/ ./cmd/...
	cd $(SERVEDIR) && ./datagen -n 2000 -users 100 -locations 10 -out . >/dev/null
	cd $(SERVEDIR) && ./maxbrstknn build -data . -out index.mxbr >/dev/null
	$(SERVEDIR)/maxbrserve -index $(SERVEDIR)/index.mxbr -addr $(SERVEADDR) >$(SERVEDIR)/serve.log 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	set -e; \
	base=http://$(SERVEADDR); \
	q='{"users":[{"x":25,"y":40,"keywords":["tag00000","tag00001"]}],"locations":[[25,40],[30,45]],"keywords":["tag00000","tag00001"],"max_keywords":1,"k":3'; \
	curl -sf --retry 20 --retry-connrefused --retry-delay 1 $$base/healthz | grep -q '"status":"ok"'; \
	curl -sf $$base/topk -d '{"x":25,"y":40,"keywords":["tag00000"],"k":3}' | grep -q '"results"'; \
	curl -sf $$base/maxbrstknn -d "$$q}" | grep -q '"location_index"'; \
	curl -sf $$base/maxbrstknn -d "$$q,\"strategy\":\"approx\",\"parallel\":{\"workers\":2}}" | grep -q '"location_index"'; \
	curl -sf $$base/topl -d "$$q,\"l\":2}" | grep -q '"results"'; \
	curl -sf $$base/multiple -d "$$q,\"m\":2}" | grep -q '"results"'; \
	curl -sf $$base/stats | grep -q '"session_cache"'; \
	curl -sf $$base/stats | grep -q '"physical_records"'; \
	echo "serve-smoke: all endpoints healthy (session cache + disk-backed index exercised)"
	rm -rf $(SERVEDIR)

# Ingest smoke: serve a saved index and POST /add + /delete while query
# traffic runs against it. Checks that the epoch advances, an added
# keyword becomes queryable through /topk, deletes drop the live count
# and dead ids 404 — then runs the ingest-vs-batch-build equivalence
# gate at quick scale (benchrunner -exp ingest fails on any answer
# mismatch between the mutated index and a from-scratch build).
ingest-smoke:
	rm -rf $(INGESTDIR) && mkdir -p $(INGESTDIR)
	$(GO) build -o $(INGESTDIR)/ ./cmd/...
	cd $(INGESTDIR) && ./datagen -n 2000 -users 100 -locations 10 -out . >/dev/null
	cd $(INGESTDIR) && ./maxbrstknn build -data . -out index.mxbr >/dev/null
	$(INGESTDIR)/maxbrserve -index $(INGESTDIR)/index.mxbr -addr $(INGESTADDR) >$(INGESTDIR)/serve.log 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	set -e; \
	base=http://$(INGESTADDR); \
	curl -sf --retry 20 --retry-connrefused --retry-delay 1 $$base/healthz | grep -q '"status":"ok"'; \
	qpids=""; \
	for w in 1 2 3 4; do \
		( for q in 1 2 3 4 5 6 7 8; do \
			curl -sf $$base/topk -d '{"x":25,"y":40,"keywords":["tag00000"],"k":3}' >/dev/null; \
		done ) & qpids="$$qpids $$!"; \
	done; \
	id=0; \
	for i in 1 2 3 4 5 6; do \
		id=$$(curl -sf $$base/add -d '{"x":25,"y":40,"keywords":["tag00000","smokekw"]}' \
			| sed -n 's/.*"id":\([0-9]*\).*/\1/p'); \
		test -n "$$id"; \
	done; \
	wait $$qpids; \
	curl -sf $$base/topk -d '{"x":25,"y":40,"keywords":["smokekw"],"k":10}' | grep -q "\"object_id\":$$id"; \
	curl -sf $$base/stats | grep -q '"epoch":[1-9]'; \
	curl -sf $$base/delete -d "{\"id\":$$id}" | grep -q '"live_objects":2005'; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' $$base/delete -d "{\"id\":$$id}"); \
	test "$$code" = 404; \
	echo "ingest-smoke: epoch advanced, added keyword queryable, deletes drop live count"
	$(GO) run ./cmd/benchrunner -exp ingest -quick >/dev/null
	@echo "ingest-smoke: ingest-vs-batch-build equivalence gate passed"
	rm -rf $(INGESTDIR)

# Sharded serving smoke: datagen → two shard servers (each re-derives
# the spatial plan and builds only its slice) + a scatter-gather
# coordinator + a single-index server over the same dataset, as four
# real processes. Every query endpoint is hit through the coordinator
# and byte-compared (cmp) against the single-index answer — the sharded
# deployment's standing exactness guarantee — then the coordinator's
# /stats must show the scatter counters moving.
shard-smoke:
	rm -rf $(SHARDDIR) && mkdir -p $(SHARDDIR)
	$(GO) build -o $(SHARDDIR)/ ./cmd/...
	cd $(SHARDDIR) && ./datagen -n 2000 -users 100 -locations 10 -out . >/dev/null
	$(SHARDDIR)/maxbrserve -data $(SHARDDIR) -addr $(SINGLEADDR) >$(SHARDDIR)/single.log 2>&1 & \
	spid=$$!; \
	$(SHARDDIR)/maxbrserve -data $(SHARDDIR) -shard 0/2 -addr $(SHARD0ADDR) >$(SHARDDIR)/shard0.log 2>&1 & \
	p0=$$!; \
	$(SHARDDIR)/maxbrserve -data $(SHARDDIR) -shard 1/2 -addr $(SHARD1ADDR) >$(SHARDDIR)/shard1.log 2>&1 & \
	p1=$$!; \
	$(SHARDDIR)/maxbrserve -coordinator -shards $(SHARD0ADDR),$(SHARD1ADDR) -addr $(COORDADDR) >$(SHARDDIR)/coord.log 2>&1 & \
	cpid=$$!; \
	trap 'kill $$spid $$p0 $$p1 $$cpid 2>/dev/null' EXIT; \
	set -e; \
	single=http://$(SINGLEADDR); coord=http://$(COORDADDR); \
	curl -sf --retry 20 --retry-connrefused --retry-delay 1 $$single/healthz | grep -q '"status":"ok"'; \
	curl -sf --retry 20 --retry-connrefused --retry-delay 1 http://$(SHARD0ADDR)/healthz | grep -q '"shard":0'; \
	curl -sf --retry 20 --retry-connrefused --retry-delay 1 http://$(SHARD1ADDR)/healthz | grep -q '"shard":1'; \
	curl -sf --retry 20 --retry-all-errors --retry-delay 1 $$coord/healthz | grep -q '"status":"ok"'; \
	q='{"users":[{"x":25,"y":40,"keywords":["tag00000","tag00001"]},{"x":60,"y":70,"keywords":["tag00002"]}],"locations":[[25,40],[30,45],[70,80]],"keywords":["tag00000","tag00001"],"max_keywords":1,"k":3'; \
	for body in "$$q}" \
		"$$q,\"strategy\":\"approx\",\"parallel\":{\"workers\":2}}" \
		"$$q,\"strategy\":\"exact\",\"parallel\":{\"workers\":4,\"groups\":8}}" \
		"$$q,\"strategy\":\"exhaustive\"}"; do \
		curl -sf $$single/maxbrstknn -d "$$body" >$(SHARDDIR)/want.json; \
		curl -sf $$coord/maxbrstknn -d "$$body" >$(SHARDDIR)/got.json; \
		cmp $(SHARDDIR)/want.json $(SHARDDIR)/got.json; \
	done; \
	curl -sf $$single/topl -d "$$q,\"l\":2}" >$(SHARDDIR)/want.json; \
	curl -sf $$coord/topl -d "$$q,\"l\":2}" >$(SHARDDIR)/got.json; \
	cmp $(SHARDDIR)/want.json $(SHARDDIR)/got.json; \
	curl -sf $$single/multiple -d "$$q,\"m\":2}" >$(SHARDDIR)/want.json; \
	curl -sf $$coord/multiple -d "$$q,\"m\":2}" >$(SHARDDIR)/got.json; \
	cmp $(SHARDDIR)/want.json $(SHARDDIR)/got.json; \
	curl -sf $$single/topk -d '{"x":25,"y":40,"keywords":["tag00000"],"k":3}' >$(SHARDDIR)/want.json; \
	curl -sf $$coord/topk -d '{"x":25,"y":40,"keywords":["tag00000"],"k":3}' >$(SHARDDIR)/got.json; \
	cmp $(SHARDDIR)/want.json $(SHARDDIR)/got.json; \
	curl -sf $$coord/stats | grep -q '"wave1_visited":[1-9]'; \
	curl -sf $$coord/stats | grep -q '"served_queries":[1-9]'; \
	echo "shard-smoke: coordinator answers byte-identical to the single index on every endpoint"
	rm -rf $(SHARDDIR)

lint: lint-maxbr lint-external

# The nine project-specific analyzers (snapshotonce, immutablealias,
# pinpair, hotpathalloc, sentinelerr, maporder, exhaustiveenum,
# errwrapchain, atomicmix) plus the //maxbr:ignore directive checks.
# Exit status 1 on any finding. -cache serves unchanged packages from
# the incremental cache and prints hit/miss counts; a warm run over an
# unchanged tree re-analyzes zero packages.
lint-maxbr:
	$(GO) run ./cmd/maxbrlint -cache ./...

# Apply every analyzer's suggested fix (sorted-key map iteration, %w
# wrapping, errors.Is rewrites), gofmt, and re-run to convergence.
# Inspect the diff before committing.
lint-fix:
	$(GO) run ./cmd/maxbrlint -fix ./...

lint-external:
	@if [ "$(LINT_EXTERNAL)" = 0 ]; then \
		echo "lint-external: disabled (LINT_EXTERNAL=0)"; exit 0; \
	fi; \
	if [ "$(LINT_EXTERNAL)" = auto ] && ! $(GO) list -m -versions honnef.co/go/tools >/dev/null 2>&1; then \
		echo "lint-external: module proxy unreachable, skipping staticcheck + govulncheck (set LINT_EXTERNAL=1 to force)"; exit 0; \
	fi; \
	set -e; \
	echo "lint-external: staticcheck $(STATICCHECK_VERSION)"; \
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	echo "lint-external: govulncheck $(GOVULNCHECK_VERSION)"; \
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Bounded fuzz smoke: each codec fuzzer runs briefly (Go allows one
# -fuzz target per invocation). The seeds assert decode↔encode fixpoints
# and streaming-vs-decoded sum agreement; the committed testdata corpora
# replay past crashers as regression tests on every plain `go test` too.
fuzz-smoke:
	$(GO) test ./internal/invfile/ -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 10s
	$(GO) test ./internal/invfile/ -run '^$$' -fuzz '^FuzzDecodeSumsInto$$' -fuzztime 10s
	$(GO) test ./internal/persist/ -run '^$$' -fuzz '^FuzzDecodeMaster$$' -fuzztime 10s

ci: build vet lint race bench bench-smoke cli-smoke serve-smoke ingest-smoke shard-smoke fuzz-smoke
