package maxbrstknn

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/vocab"
)

// Regression tests for the Session-layer bugs fixed alongside the serving
// subsystem: extension queries silently downgrading unsupported
// strategies, the per-Run MIUR-tree rebuild, and duplicate unknown
// keywords occupying distinct term slots.

func TestExtensionsRejectUnsupportedStrategies(t *testing.T) {
	idx, req := paperExample(t)
	s, err := idx.NewSession(req.Users, req.K)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{Exhaustive, UserIndexed} {
		req.Strategy = strat
		if _, err := s.RunTopL(req, 2); err == nil {
			t.Errorf("RunTopL(%v) = nil error, want explicit rejection", strat)
		} else if !strings.Contains(err.Error(), strat.String()) {
			t.Errorf("RunTopL(%v) error %q does not name the strategy", strat, err)
		}
		if _, err := s.RunMultiple(req, 2); err == nil {
			t.Errorf("RunMultiple(%v) = nil error, want explicit rejection", strat)
		} else if !strings.Contains(err.Error(), strat.String()) {
			t.Errorf("RunMultiple(%v) error %q does not name the strategy", strat, err)
		}
	}
	// The supported strategies still work.
	for _, strat := range []Strategy{Exact, Approx} {
		req.Strategy = strat
		if _, err := s.RunTopL(req, 2); err != nil {
			t.Errorf("RunTopL(%v): %v", strat, err)
		}
		if _, err := s.RunMultiple(req, 2); err != nil {
			t.Errorf("RunMultiple(%v): %v", strat, err)
		}
	}
}

func TestRunRejectsUnknownStrategy(t *testing.T) {
	idx, req := paperExample(t)
	s, err := idx.NewSession(req.Users, req.K)
	if err != nil {
		t.Fatal(err)
	}
	req.Strategy = Strategy(42)
	if _, err := s.Run(req); err == nil {
		t.Error("Run with an out-of-range strategy should error, not silently run Exact")
	}
}

func TestUserIndexedRunReusesMIURTree(t *testing.T) {
	idx, req := paperExample(t)
	req.Strategy = UserIndexed

	// One-shot answer as the oracle.
	want, err := idx.MaxBRSTkNN(req)
	if err != nil {
		t.Fatal(err)
	}

	s, err := idx.NewSession(req.Users, req.K)
	if err != nil {
		t.Fatal(err)
	}
	if s.miur != nil {
		t.Fatal("MIUR-tree built before any UserIndexed run")
	}
	first, err := s.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	builtTree, builtEngine := s.miur, s.uiEngine
	if builtTree == nil || builtEngine == nil {
		t.Fatal("first UserIndexed run did not cache the MIUR-tree and engine")
	}
	second, err := s.Run(req)
	if err != nil {
		t.Fatal(err)
	}
	// No tree-build work on the second call: the cached tree and engine
	// are the very same objects.
	if s.miur != builtTree {
		t.Error("second UserIndexed run rebuilt the MIUR-tree")
	}
	if s.uiEngine != builtEngine {
		t.Error("second UserIndexed run rebuilt the user-indexed engine")
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("repeated UserIndexed runs differ: %+v vs %+v", first, second)
	}
	if !reflect.DeepEqual(first, want) {
		t.Errorf("session UserIndexed run %+v differs from one-shot %+v", first, want)
	}
}

func TestUnknownKeywordDuplicatesShareTermSlot(t *testing.T) {
	idx, _ := paperExample(t)

	// Repeated unknown strings map to one reserved id with accumulated
	// frequency — the documented behavior of repeated known keywords.
	doc := idx.snap.Load().docFromKeywords([]string{"zzz", "zzz"}, nil)
	if doc.Unique() != 1 {
		t.Fatalf("[zzz zzz]: %d distinct terms, want 1", doc.Unique())
	}
	if got := doc.Freq(vocab.UnknownTerm(0)); got != 2 {
		t.Fatalf("[zzz zzz]: freq %d, want accumulated 2", got)
	}

	// Distinct unknown strings still get distinct slots.
	doc = idx.snap.Load().docFromKeywords([]string{"zzz", "sushi", "zzz", "qqq"}, nil)
	if doc.Unique() != 3 {
		t.Fatalf("[zzz sushi zzz qqq]: %d distinct terms, want 3", doc.Unique())
	}
	if got := doc.Freq(vocab.UnknownTerm(0)); got != 2 {
		t.Fatalf("zzz freq %d, want 2", got)
	}
	if got := doc.Freq(vocab.UnknownTerm(1)); got != 1 {
		t.Fatalf("qqq freq %d, want 1", got)
	}
}

func TestUnknownKeywordsMatchByStringAcrossDocuments(t *testing.T) {
	idx, _ := paperExample(t) // vocabulary: {sushi, noodles}
	users := []UserSpec{
		{X: 1, Y: 1, Keywords: []string{"aaa"}},
		{X: 2, Y: 2, Keywords: []string{"qqq"}},
		{X: 3, Y: 3, Keywords: []string{"zzz"}},
	}
	s, err := idx.NewSession(users, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct unknown strings get distinct ids across the whole cohort,
	// not a per-document numbering that collides between users and the
	// request's existing-keyword document.
	a := s.users[0].Doc.Terms()[0]
	q := s.users[1].Doc.Terms()[0]
	z := s.users[2].Doc.Terms()[0]
	if a == q || a == z || q == z {
		t.Fatalf("cohort unknown ids collide: aaa=%d qqq=%d zzz=%d", a, q, z)
	}

	req := Request{
		Users: users, Locations: [][2]float64{{2, 2}},
		Keywords: []string{"sushi"}, MaxKeywords: 1, K: 1,
		ExistingKeywords: []string{"zzz", "bbb"},
	}
	query, err := s.buildQuery(req)
	if err != nil {
		t.Fatal(err)
	}
	// The shared unknown string "zzz" must map to the same id in the ox
	// document as in user 2's document (the strings genuinely match)...
	if !query.OxDoc.Has(z) {
		t.Errorf("ox doc %v does not share the id of the shared unknown string zzz (%d)", query.OxDoc.Terms(), z)
	}
	// ...while "bbb" — unknown but shared with nobody — must not collide
	// with any user's unknown id.
	if query.OxDoc.Has(a) || query.OxDoc.Has(q) {
		t.Errorf("ox doc %v collides with an unshared user unknown id (aaa=%d qqq=%d)", query.OxDoc.Terms(), a, q)
	}
}

func TestUnknownKeywordDuplicateScoring(t *testing.T) {
	idx, _ := paperExample(t) // KeywordOverlap: Norm(u) counts distinct terms

	// A duplicated unknown keyword must dilute the normalizer exactly
	// once, like a duplicated known keyword does — so ["sushi" zzz zzz]
	// scores identically to ["sushi" zzz], mirroring how
	// ["sushi" sushi] scores identically to ["sushi"]. Before the fix
	// the duplicate occupied a second term slot and shrank every score.
	dup, err := idx.TopK(4.0, 8.0, []string{"sushi", "zzz", "zzz"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	single, err := idx.TopK(4.0, 8.0, []string{"sushi", "zzz"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dup, single) {
		t.Errorf("duplicate unknown keyword changed scores:\n[sushi zzz zzz]: %+v\n[sushi zzz]:     %+v", dup, single)
	}

	knownDup, err := idx.TopK(4.0, 8.0, []string{"sushi", "sushi"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	knownSingle, err := idx.TopK(4.0, 8.0, []string{"sushi"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(knownDup, knownSingle) {
		t.Errorf("duplicate known keyword changed scores:\n[sushi sushi]: %+v\n[sushi]:       %+v", knownDup, knownSingle)
	}
}
