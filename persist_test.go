package maxbrstknn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/storage"
)

// randomIndex builds a random index plus a matching request the way the
// parallel equivalence tests do.
func randomIndex(t *testing.T, rng *rand.Rand, opts Options) (*Index, Request) {
	t.Helper()
	words := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	b := NewBuilder()
	for i := 0; i < 60; i++ {
		kws := []string{words[rng.Intn(len(words))], words[rng.Intn(len(words))]}
		b.AddObject(rng.Float64()*10, rng.Float64()*10, kws...)
	}
	idx, err := b.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	users := make([]UserSpec, 16)
	for i := range users {
		users[i] = UserSpec{
			X: rng.Float64() * 10, Y: rng.Float64() * 10,
			Keywords: []string{words[rng.Intn(len(words))], words[rng.Intn(len(words))]},
		}
	}
	req := Request{
		Users:       users,
		Locations:   [][2]float64{{2, 2}, {8, 8}, {5, 5}, {1, 9}},
		Keywords:    words,
		MaxKeywords: 2,
		K:           3,
	}
	return idx, req
}

// TestSaveLoadRoundTrip is the core persistence guarantee: a
// saved-then-loaded index answers every strategy, with and without the
// parallel engine, byte-identically to the in-memory original — on random
// instances and for every measure.
func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dir := t.TempDir()
	for trial, opts := range []Options{
		{Measure: LanguageModel},
		{Measure: TFIDF, Alpha: 0.3},
		{Measure: KeywordOverlap, Fanout: 8},
		{Measure: BM25Measure, Lambda: 0.7},
	} {
		idx, req := randomIndex(t, rng, opts)
		path := filepath.Join(dir, fmt.Sprintf("trial%d.mxbr", trial))
		if err := idx.Save(path); err != nil {
			t.Fatalf("trial %d: Save: %v", trial, err)
		}
		for name, lo := range map[string]LoadOptions{
			"warm": {},
			"cold": {CacheCapacity: -1},
		} {
			loaded, err := LoadWithOptions(path, lo)
			if err != nil {
				t.Fatalf("trial %d %s: Load: %v", trial, name, err)
			}
			for _, strat := range []Strategy{Exact, Approx, Exhaustive, UserIndexed} {
				for _, par := range []ParallelOptions{{}, {Workers: 4, Groups: 3}} {
					req.Strategy = strat
					req.Parallel = par
					want, err := idx.MaxBRSTkNN(req)
					if err != nil {
						t.Fatalf("trial %d %v: in-memory: %v", trial, strat, err)
					}
					got, err := loaded.MaxBRSTkNN(req)
					if err != nil {
						t.Fatalf("trial %d %s %v: loaded: %v", trial, name, strat, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d %s %v parallel=%+v: loaded %+v != in-memory %+v",
							trial, name, strat, par, got, want)
					}
				}
			}
			// TopK must agree too, for users on and off the corpus.
			for i := 0; i < 5; i++ {
				x, y := rng.Float64()*10, rng.Float64()*10
				kws := []string{"a", "zzz-unknown"}
				want, err := idx.TopK(x, y, kws, 4)
				if err != nil {
					t.Fatal(err)
				}
				got, err := loaded.TopK(x, y, kws, 4)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d %s: TopK: loaded %+v != in-memory %+v", trial, name, got, want)
				}
			}
			if err := loaded.Close(); err != nil {
				t.Fatalf("trial %d %s: Close: %v", trial, name, err)
			}
		}
	}
}

// TestLoadedIndexPhysicalReads checks the real-I/O ledger: a cold-loaded
// index reports physical page reads, and a warm buffer pool absorbs
// repeat traffic.
func TestLoadedIndexPhysicalReads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx, req := randomIndex(t, rng, Options{})
	path := filepath.Join(t.TempDir(), "ix.mxbr")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	if r, p := idx.ReadStats(); r != 0 || p != 0 {
		t.Fatalf("in-memory index reports physical reads %d/%d", r, p)
	}

	cold, err := LoadWithOptions(path, LoadOptions{CacheCapacity: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	if _, err := cold.MaxBRSTkNN(req); err != nil {
		t.Fatal(err)
	}
	records, pages := cold.ReadStats()
	if records == 0 || pages == 0 {
		t.Fatalf("cold index served a query without physical reads (records=%d pages=%d)", records, pages)
	}

	warm, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if _, err := warm.MaxBRSTkNN(req); err != nil {
		t.Fatal(err)
	}
	_, afterFirst := warm.ReadStats()
	if _, err := warm.MaxBRSTkNN(req); err != nil {
		t.Fatal(err)
	}
	_, afterSecond := warm.ReadStats()
	cs := warm.CacheStats()
	if cs.BufferHits+cs.DecodedHits == 0 {
		t.Fatalf("warm index recorded no cache hits at either level: %+v", cs)
	}
	if grew := afterSecond - afterFirst; grew >= afterFirst {
		t.Fatalf("buffer pool absorbed nothing: first query %d pages, second %d", afterFirst, grew)
	}
}

// TestLoadedIndexAddObject checks that a loaded index keeps accepting
// inserts (records land in the memory overlay) and can be saved again.
func TestLoadedIndexAddObject(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	idx, req := randomIndex(t, rng, Options{})
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.mxbr")
	if err := idx.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	// The inserted object carries a brand-new keyword: corpus statistics,
	// model arrays, and the space MBR must all stay frozen at their
	// build-time values on both sides (the load path must not recompute
	// them over the grown object set).
	if _, err := loaded.AddObject(3, 3, "a", "brand-new"); err != nil {
		t.Fatalf("AddObject on loaded index: %v", err)
	}
	if _, err := idx.AddObject(3, 3, "a", "brand-new"); err != nil {
		t.Fatal(err)
	}
	want, err := idx.MaxBRSTkNN(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.MaxBRSTkNN(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after AddObject: loaded %+v != in-memory %+v", got, want)
	}
	// TopK compares raw scores, so even a tiny statistics drift fails.
	wantTop, err := idx.TopK(3, 3, []string{"a", "brand-new"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotTop, err := loaded.TopK(3, 3, []string{"a", "brand-new"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTop, wantTop) {
		t.Fatalf("after AddObject: loaded TopK %+v != in-memory %+v", gotTop, wantTop)
	}

	// Save the grown loaded index and load it once more.
	path2 := filepath.Join(dir, "ix2.mxbr")
	if err := loaded.Save(path2); err != nil {
		t.Fatalf("re-Save of loaded index: %v", err)
	}
	reloaded, err := Load(path2)
	if err != nil {
		t.Fatal(err)
	}
	defer reloaded.Close()
	got2, err := reloaded.MaxBRSTkNN(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("after re-save: reloaded %+v != in-memory %+v", got2, want)
	}
	gotTop2, err := reloaded.TopK(3, 3, []string{"a", "brand-new"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTop2, wantTop) {
		t.Fatalf("after re-save: reloaded TopK %+v != in-memory %+v", gotTop2, wantTop)
	}
}

// TestLoadRejectsCorruptFiles drives the error paths of the on-disk
// format: wrong magic, version mismatches, flipped bytes, truncation.
func TestLoadRejectsCorruptFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	idx, _ := randomIndex(t, rng, Options{})
	dir := t.TempDir()
	good := filepath.Join(dir, "good.mxbr")
	if err := idx.Save(good); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	write := func(t *testing.T, name string, mutate func(b []byte) []byte) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, mutate(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("bad magic", func(t *testing.T) {
		p := write(t, "magic.mxbr", func(b []byte) []byte { b[0] ^= 0xFF; return b })
		if _, err := Load(p); !errors.Is(err, storage.ErrBadMagic) {
			t.Fatalf("want ErrBadMagic, got %v", err)
		}
	})
	t.Run("file version mismatch", func(t *testing.T) {
		p := write(t, "version.mxbr", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], storage.FormatVersion+1)
			return b
		})
		if _, err := Load(p); !errors.Is(err, storage.ErrVersionMismatch) {
			t.Fatalf("want ErrVersionMismatch, got %v", err)
		}
	})
	t.Run("header bit flip", func(t *testing.T) {
		p := write(t, "hdrflip.mxbr", func(b []byte) []byte { b[20] ^= 0x01; return b })
		if _, err := Load(p); !errors.Is(err, storage.ErrChecksum) {
			t.Fatalf("want ErrChecksum, got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		p := write(t, "trunc.mxbr", func(b []byte) []byte { return b[:len(b)/2] })
		if _, err := Load(p); !errors.Is(err, storage.ErrTruncated) {
			t.Fatalf("want ErrTruncated, got %v", err)
		}
	})
	t.Run("directory bit flip", func(t *testing.T) {
		p := write(t, "dirflip.mxbr", func(b []byte) []byte { b[len(b)-6] ^= 0x40; return b })
		if _, err := Load(p); !errors.Is(err, storage.ErrChecksum) {
			t.Fatalf("want ErrChecksum, got %v", err)
		}
	})
	t.Run("empty file", func(t *testing.T) {
		p := write(t, "empty.mxbr", func([]byte) []byte { return nil })
		if _, err := Load(p); !errors.Is(err, storage.ErrTruncated) {
			t.Fatalf("want ErrTruncated, got %v", err)
		}
	})
	t.Run("missing file", func(t *testing.T) {
		if _, err := Load(filepath.Join(dir, "nope.mxbr")); err == nil {
			t.Fatal("want error for missing file")
		}
	})
	// The pristine file must still load after all that.
	loaded, err := Load(good)
	if err != nil {
		t.Fatalf("pristine file: %v", err)
	}
	loaded.Close()
}

// TestFacadeNoPanic asserts that invalid options and requests surface as
// errors at the facade — no internal validation panic may cross the
// public API boundary.
func TestFacadeNoPanic(t *testing.T) {
	build := func(opts Options) (err error, panicked bool) {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				err = fmt.Errorf("panic: %v", r)
			}
		}()
		b := NewBuilder()
		b.AddObject(1, 1, "x")
		_, err = b.Build(opts)
		return err, false
	}
	for name, opts := range map[string]Options{
		"alpha too big":    {Alpha: 1.5},
		"alpha negative":   {Alpha: -0.1},
		"alpha NaN":        {Alpha: nan()},
		"lambda too big":   {Lambda: 2},
		"lambda negative":  {Lambda: -1},
		"fanout too small": {Fanout: 2},
		"unknown measure":  {Measure: Measure(42)},
	} {
		err, panicked := build(opts)
		if panicked {
			t.Errorf("%s: panic crossed the facade: %v", name, err)
		} else if err == nil {
			t.Errorf("%s: Build accepted invalid options", name)
		}
	}
	// Valid edge values must still build.
	for name, opts := range map[string]Options{
		"alpha 0 explicit":  {ExplicitAlpha: true},
		"alpha 1":           {Alpha: 1},
		"lambda 0 explicit": {ExplicitLambda: true},
		"lambda 1":          {Lambda: 1},
		"fanout 4":          {Fanout: 4},
	} {
		if err, _ := build(opts); err != nil {
			t.Errorf("%s: Build rejected valid options: %v", name, err)
		}
	}

	// Bad request parameters error rather than panic too.
	b := NewBuilder()
	b.AddObject(1, 1, "x")
	idx, err := b.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.TopK(0, 0, []string{"x"}, 0); err == nil {
		t.Error("TopK accepted k=0")
	}
	if _, err := idx.MaxBRSTkNN(Request{}); err == nil {
		t.Error("MaxBRSTkNN accepted an empty request")
	}
}

func nan() float64 { var z float64; return z / z }

// TestUnknownKeywordsNeverMatch is the regression test for the fabricated
// unknown-TermID hack: unknown query keywords must never match any object.
// The old code assigned an unknown keyword the id Vocab.Size()+1000+i at
// document-creation time, so a user document created before the
// vocabulary grew by 1000+ terms (via AddObject) would silently start
// matching the freshly assigned real terms.
func TestUnknownKeywordsNeverMatch(t *testing.T) {
	b := NewBuilder()
	b.AddObject(5, 5, "anchor")
	// alpha=0: scores are pure keyword overlap, so any nonzero score is a
	// (false) textual match.
	idx, err := b.Build(Options{Measure: KeywordOverlap, ExplicitAlpha: true})
	if err != nil {
		t.Fatal(err)
	}

	// The user document with out-of-vocabulary keywords is created now,
	// while the vocabulary is tiny.
	users := []UserSpec{{X: 5, Y: 5, Keywords: []string{"never-seen-1", "never-seen-2"}}}
	s, err := idx.NewSession(users, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Grow the vocabulary far past the old fabrication window: the ids
	// the hack would have fabricated now belong to real object terms.
	for i := 0; i < 1200; i++ {
		if _, err := idx.AddObject(5, 5, fmt.Sprintf("grown-term-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}

	tops, err := s.JointTopKAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tops[0] {
		if r.Score != 0 {
			t.Fatalf("unknown keywords matched object %d with score %v", r.ObjectID, r.Score)
		}
	}

	// The fresh-document path must stay clean too.
	res, err := idx.TopK(5, 5, []string{"never-seen-1", "never-seen-2"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Score != 0 {
			t.Fatalf("TopK: unknown keywords matched object %d with score %v", r.ObjectID, r.Score)
		}
	}
}
