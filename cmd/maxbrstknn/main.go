// Command maxbrstknn answers a MaxBRSTkNN query over text files produced
// by cmd/datagen (or hand-written in the same interchange format):
//
//	maxbrstknn -data ./data -ws 3 -k 10 -strategy approx
//
// It loads objects.txt, users.txt and candidates.txt from the data
// directory, runs the query, and prints the selected location, keyword
// set, and the reached users.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	maxbrstknn "repro"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/vocab"
)

func main() {
	var (
		dir      = flag.String("data", ".", "directory holding objects.txt, users.txt, candidates.txt")
		ws       = flag.Int("ws", 3, "maximum keywords to select")
		k        = flag.Int("k", 10, "top-k depth")
		alpha    = flag.Float64("alpha", 0.5, "spatial/textual preference")
		strategy = flag.String("strategy", "exact", "exact | approx | exhaustive | user-indexed")
		measure  = flag.String("measure", "lm", "lm | tfidf | ko | bm25")
		topL     = flag.Int("top", 1, "report the top-L candidate locations")
	)
	flag.Parse()

	v := vocab.New()
	ds := loadObjects(filepath.Join(*dir, "objects.txt"), v)
	users := loadUsers(filepath.Join(*dir, "users.txt"), v)
	locs, kws := loadCandidates(filepath.Join(*dir, "candidates.txt"))

	b := maxbrstknn.NewBuilder()
	for _, o := range ds.Objects {
		b.AddObject(o.Loc.X, o.Loc.Y, termStrings(v, o.Doc)...)
	}
	opts := maxbrstknn.Options{Alpha: *alpha, ExplicitAlpha: true}
	switch strings.ToLower(*measure) {
	case "lm":
		opts.Measure = maxbrstknn.LanguageModel
	case "tfidf":
		opts.Measure = maxbrstknn.TFIDF
	case "ko":
		opts.Measure = maxbrstknn.KeywordOverlap
	case "bm25":
		opts.Measure = maxbrstknn.BM25Measure
	default:
		fail(fmt.Errorf("unknown measure %q", *measure))
	}
	idx, err := b.Build(opts)
	if err != nil {
		fail(err)
	}

	specs := make([]maxbrstknn.UserSpec, len(users))
	for i, u := range users {
		specs[i] = maxbrstknn.UserSpec{X: u.Loc.X, Y: u.Loc.Y, Keywords: termStrings(v, u.Doc)}
	}
	reqLocs := make([][2]float64, len(locs))
	for i, l := range locs {
		reqLocs[i] = [2]float64{l.X, l.Y}
	}
	req := maxbrstknn.Request{
		Users:       specs,
		Locations:   reqLocs,
		Keywords:    kws,
		MaxKeywords: *ws,
		K:           *k,
	}
	switch strings.ToLower(*strategy) {
	case "exact":
		req.Strategy = maxbrstknn.Exact
	case "approx":
		req.Strategy = maxbrstknn.Approx
	case "exhaustive":
		req.Strategy = maxbrstknn.Exhaustive
	case "user-indexed", "userindexed":
		req.Strategy = maxbrstknn.UserIndexed
	default:
		fail(fmt.Errorf("unknown strategy %q", *strategy))
	}

	fmt.Printf("objects=%d users=%d candidate locations=%d candidate keywords=%d\n",
		idx.NumObjects(), len(specs), len(reqLocs), len(kws))
	fmt.Printf("strategy=%s k=%d ws=%d alpha=%.2f measure=%s\n", req.Strategy, *k, *ws, *alpha, *measure)

	start := time.Now()
	if *topL > 1 {
		session, err := idx.NewSession(specs, *k)
		if err != nil {
			fail(err)
		}
		ranked, err := session.RunTopL(req, *topL)
		if err != nil {
			fail(err)
		}
		for i, res := range ranked {
			fmt.Printf("#%d  location %d (%.6f, %.6f)  keywords [%s]  |BRSTkNN| = %d\n",
				i+1, res.LocationIndex, res.Location[0], res.Location[1],
				strings.Join(res.Keywords, ", "), res.Count())
		}
	} else {
		res, err := idx.MaxBRSTkNN(req)
		if err != nil {
			fail(err)
		}
		if res.LocationIndex < 0 {
			fmt.Println("no location attracts any user")
			return
		}
		fmt.Printf("selected location: #%d (%.6f, %.6f)\n", res.LocationIndex, res.Location[0], res.Location[1])
		fmt.Printf("selected keywords: %s\n", strings.Join(res.Keywords, ", "))
		fmt.Printf("|BRSTkNN| = %d users: %v\n", res.Count(), res.UserIDs)
		if res.Stats.TotalUsers > 0 {
			fmt.Printf("user-index pruning: %d/%d resolved (%.1f%% pruned)\n",
				res.Stats.ResolvedUsers, res.Stats.TotalUsers, res.Stats.PrunedPercent)
		}
	}
	fmt.Printf("elapsed: %.1f ms, simulated I/O: %d\n",
		float64(time.Since(start).Microseconds())/1000, idx.SimulatedIO())
}

func loadObjects(path string, v *vocab.Vocabulary) *dataset.Dataset {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	ds, err := dataset.ReadObjects(f, v)
	if err != nil {
		fail(err)
	}
	return ds
}

func loadUsers(path string, v *vocab.Vocabulary) []dataset.User {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	users, err := dataset.ReadUsers(f, v)
	if err != nil {
		fail(err)
	}
	return users
}

func loadCandidates(path string) ([]geoPoint, []string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	locs, kws, err := dataset.ReadCandidates(f)
	if err != nil {
		fail(err)
	}
	return locs, kws
}

// geoPoint aliases the internal geo.Point for local readability.
type geoPoint = geo.Point

func termStrings(v *vocab.Vocabulary, d vocab.Doc) []string {
	var out []string
	d.ForEach(func(t vocab.TermID, f int32) {
		for i := int32(0); i < f; i++ {
			out = append(out, v.Term(t))
		}
	})
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
