// Command maxbrstknn answers MaxBRSTkNN queries over text files produced
// by cmd/datagen (or hand-written in the same interchange format).
//
// One-shot mode (build the index in memory, query, exit):
//
//	maxbrstknn -data ./data -ws 3 -k 10 -strategy approx
//
// Persistent-index mode: build once, then serve any number of queries
// against the saved index file —
//
//	maxbrstknn build -data ./data -out ./data/index.mxbr
//	maxbrstknn query -index ./data/index.mxbr -data ./data -ws 3 -k 10
//
// build reads objects.txt from the data directory and writes the single
// page-aligned index file; query loads it (through an LRU buffer pool —
// size it with -cache, or pass -cache -1 to serve cold) and runs the
// query described by users.txt and candidates.txt, reporting simulated
// I/O next to the real page reads the index file served.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	maxbrstknn "repro"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/indexutil"
	"repro/internal/vocab"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "build":
			runBuild(os.Args[2:])
			return
		case "query":
			runQuery(os.Args[2:])
			return
		}
	}
	runOneShot(os.Args[1:])
}

// runBuild implements the `build` subcommand: dataset → saved index file.
func runBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		dir     = fs.String("data", ".", "directory holding objects.txt")
		out     = fs.String("out", "index.mxbr", "output index file")
		alpha   = fs.Float64("alpha", 0.5, "spatial/textual preference")
		lambda  = fs.Float64("lambda", 0.4, "LM smoothing weight")
		measure = fs.String("measure", "lm", "lm | tfidf | ko | bm25")
		fanout  = fs.Int("fanout", 32, "R-tree node capacity")
	)
	fs.Parse(args)

	ds := loadObjects(filepath.Join(*dir, "objects.txt"), vocab.New())
	b := indexutil.BuilderFromDataset(ds)
	opts := maxbrstknn.Options{
		Measure: parseMeasure(*measure), Fanout: *fanout,
		Alpha: *alpha, ExplicitAlpha: true,
		Lambda: *lambda, ExplicitLambda: true,
	}
	start := time.Now()
	idx, err := b.Build(opts)
	if err != nil {
		fail(err)
	}
	buildMs := float64(time.Since(start).Microseconds()) / 1000
	start = time.Now()
	if err := idx.Save(*out); err != nil {
		fail(err)
	}
	saveMs := float64(time.Since(start).Microseconds()) / 1000
	st, err := os.Stat(*out)
	if err != nil {
		fail(err)
	}
	fmt.Printf("built %d objects (measure=%s alpha=%.2f fanout=%d) in %.1f ms\n",
		idx.NumObjects(), *measure, *alpha, *fanout, buildMs)
	fmt.Printf("saved %s: %d bytes in %.1f ms\n", *out, st.Size(), saveMs)
}

// runQuery implements the `query` subcommand: saved index + query files →
// answer.
func runQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var (
		indexPath = fs.String("index", "index.mxbr", "saved index file (from `maxbrstknn build`)")
		dir       = fs.String("data", ".", "directory holding users.txt, candidates.txt")
		ws        = fs.Int("ws", 3, "maximum keywords to select")
		k         = fs.Int("k", 10, "top-k depth")
		strategy  = fs.String("strategy", "exact", "exact | approx | exhaustive | user-indexed")
		topL      = fs.Int("top", 1, "report the top-L candidate locations")
		workers   = fs.Int("workers", 0, "parallel engine workers (0 = sequential)")
		cache     = fs.Int("cache", 0, "buffer-pool records (0 = default, negative = cold)")
	)
	fs.Parse(args)

	start := time.Now()
	idx, err := maxbrstknn.LoadWithOptions(*indexPath, maxbrstknn.LoadOptions{CacheCapacity: *cache})
	if err != nil {
		fail(err)
	}
	defer idx.Close()
	loadMs := float64(time.Since(start).Microseconds()) / 1000
	fmt.Printf("loaded %s: %d objects in %.1f ms\n", *indexPath, idx.NumObjects(), loadMs)

	// The query-side files carry keyword strings; parse them through a
	// scratch vocabulary (the index file owns the real one).
	scratch := vocab.New()
	users := loadUsers(filepath.Join(*dir, "users.txt"), scratch)
	locs, kws := loadCandidates(filepath.Join(*dir, "candidates.txt"))
	specs := indexutil.UserSpecs(scratch, users)
	req := maxbrstknn.Request{
		Users:       specs,
		Locations:   pointPairs(locs),
		Keywords:    kws,
		MaxKeywords: *ws,
		K:           *k,
		Strategy:    parseStrategy(*strategy),
		Parallel:    maxbrstknn.ParallelOptions{Workers: *workers},
	}
	fmt.Printf("users=%d candidate locations=%d candidate keywords=%d strategy=%s k=%d ws=%d\n",
		len(specs), len(locs), len(kws), req.Strategy, *k, *ws)
	answer(idx, req, *topL)
}

// runOneShot preserves the original flag-driven behavior: build the index
// in memory, answer one query, exit.
func runOneShot(args []string) {
	fs := flag.NewFlagSet("maxbrstknn", flag.ExitOnError)
	var (
		dir      = fs.String("data", ".", "directory holding objects.txt, users.txt, candidates.txt")
		ws       = fs.Int("ws", 3, "maximum keywords to select")
		k        = fs.Int("k", 10, "top-k depth")
		alpha    = fs.Float64("alpha", 0.5, "spatial/textual preference")
		strategy = fs.String("strategy", "exact", "exact | approx | exhaustive | user-indexed")
		measure  = fs.String("measure", "lm", "lm | tfidf | ko | bm25")
		topL     = fs.Int("top", 1, "report the top-L candidate locations")
	)
	fs.Parse(args)

	v := vocab.New()
	ds := loadObjects(filepath.Join(*dir, "objects.txt"), v)
	users := loadUsers(filepath.Join(*dir, "users.txt"), v)
	locs, kws := loadCandidates(filepath.Join(*dir, "candidates.txt"))

	opts := maxbrstknn.Options{Alpha: *alpha, ExplicitAlpha: true, Measure: parseMeasure(*measure)}
	idx, err := indexutil.BuilderFromDataset(ds).Build(opts)
	if err != nil {
		fail(err)
	}

	specs := indexutil.UserSpecs(v, users)
	req := maxbrstknn.Request{
		Users:       specs,
		Locations:   pointPairs(locs),
		Keywords:    kws,
		MaxKeywords: *ws,
		K:           *k,
		Strategy:    parseStrategy(*strategy),
	}

	fmt.Printf("objects=%d users=%d candidate locations=%d candidate keywords=%d\n",
		idx.NumObjects(), len(specs), len(locs), len(kws))
	fmt.Printf("strategy=%s k=%d ws=%d alpha=%.2f measure=%s\n", req.Strategy, *k, *ws, *alpha, *measure)
	answer(idx, req, *topL)
}

// answer runs the request (top-1 or top-L) and prints the result with the
// I/O ledger: simulated I/O always, physical reads and cache hit rate
// when the index is disk-backed.
func answer(idx *maxbrstknn.Index, req maxbrstknn.Request, topL int) {
	start := time.Now()
	if topL > 1 {
		session, err := idx.NewSession(req.Users, req.K)
		if err != nil {
			fail(err)
		}
		defer session.Close()
		ranked, err := session.RunTopL(req, topL)
		if err != nil {
			fail(err)
		}
		for i, res := range ranked {
			fmt.Printf("#%d  location %d (%.6f, %.6f)  keywords [%s]  |BRSTkNN| = %d\n",
				i+1, res.LocationIndex, res.Location[0], res.Location[1],
				strings.Join(res.Keywords, ", "), res.Count())
		}
	} else {
		res, err := idx.MaxBRSTkNN(req)
		if err != nil {
			fail(err)
		}
		if res.LocationIndex < 0 {
			fmt.Println("no location attracts any user")
		} else {
			fmt.Printf("selected location: #%d (%.6f, %.6f)\n", res.LocationIndex, res.Location[0], res.Location[1])
			fmt.Printf("selected keywords: %s\n", strings.Join(res.Keywords, ", "))
			fmt.Printf("|BRSTkNN| = %d users: %v\n", res.Count(), res.UserIDs)
			if res.Stats.TotalUsers > 0 {
				fmt.Printf("user-index pruning: %d/%d resolved (%.1f%% pruned)\n",
					res.Stats.ResolvedUsers, res.Stats.TotalUsers, res.Stats.PrunedPercent)
			}
		}
	}
	fmt.Printf("elapsed: %.1f ms, simulated I/O: %d\n",
		float64(time.Since(start).Microseconds())/1000, idx.SimulatedIO())
	if records, pages := idx.ReadStats(); records > 0 {
		cs := idx.CacheStats()
		fmt.Printf("physical reads: %d records / %d pages, buffer pool: %d hits / %d misses\n",
			records, pages, cs.BufferHits, cs.BufferMisses)
		fmt.Printf("decoded cache: %d hits / %d misses / %d evictions, %d entries, %d bytes resident\n",
			cs.DecodedHits, cs.DecodedMisses, cs.DecodedEvictions, cs.DecodedEntries, cs.DecodedBytes)
	}
}

func parseMeasure(s string) maxbrstknn.Measure {
	switch strings.ToLower(s) {
	case "lm":
		return maxbrstknn.LanguageModel
	case "tfidf":
		return maxbrstknn.TFIDF
	case "ko":
		return maxbrstknn.KeywordOverlap
	case "bm25":
		return maxbrstknn.BM25Measure
	default:
		fail(fmt.Errorf("unknown measure %q", s))
		panic("unreachable")
	}
}

func parseStrategy(s string) maxbrstknn.Strategy {
	switch strings.ToLower(s) {
	case "exact":
		return maxbrstknn.Exact
	case "approx":
		return maxbrstknn.Approx
	case "exhaustive":
		return maxbrstknn.Exhaustive
	case "user-indexed", "userindexed":
		return maxbrstknn.UserIndexed
	default:
		fail(fmt.Errorf("unknown strategy %q", s))
		panic("unreachable")
	}
}

func pointPairs(locs []geo.Point) [][2]float64 {
	out := make([][2]float64, len(locs))
	for i, l := range locs {
		out[i] = [2]float64{l.X, l.Y}
	}
	return out
}

func loadObjects(path string, v *vocab.Vocabulary) *dataset.Dataset {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	ds, err := dataset.ReadObjects(f, v)
	if err != nil {
		fail(err)
	}
	return ds
}

func loadUsers(path string, v *vocab.Vocabulary) []dataset.User {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	users, err := dataset.ReadUsers(f, v)
	if err != nil {
		fail(err)
	}
	return users
}

func loadCandidates(path string) ([]geo.Point, []string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	locs, kws, err := dataset.ReadCandidates(f)
	if err != nil {
		fail(err)
	}
	return locs, kws
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
