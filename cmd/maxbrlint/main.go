// Command maxbrlint runs the project's invariant analyzers over the
// tree: a multichecker in the style of go/analysis, built on the
// self-contained framework in internal/lint.
//
// Usage:
//
//	maxbrlint [-analyzers a,b,...] [-list] [packages...]
//
// With no package patterns it analyzes ./... relative to the current
// directory. The exit status is 1 when any diagnostic survives the
// //maxbr:ignore filter, so `make lint` and CI can gate on it directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		names   = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list    = flag.Bool("list", false, "list the available analyzers and exit")
		dirFlag = flag.String("C", ".", "directory to run in (module root or below)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: maxbrlint [flags] [packages...]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *names != "" {
		analyzers = analyzers[:0]
		for _, n := range strings.Split(*names, ",") {
			n = strings.TrimSpace(n)
			a := lint.AnalyzerByName(n)
			if a == nil {
				fmt.Fprintf(os.Stderr, "maxbrlint: unknown analyzer %q (use -list)\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := lint.Run(*dirFlag, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "maxbrlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "maxbrlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
