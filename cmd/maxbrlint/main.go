// Command maxbrlint runs the project's invariant analyzers over the
// tree: a multichecker in the style of go/analysis, built on the
// self-contained framework in internal/lint.
//
// Usage:
//
//	maxbrlint [-analyzers a,b,...] [-list] [-fix] [-json] [-cache] [packages...]
//
// With no package patterns it analyzes ./... relative to the current
// directory. The exit status is 1 when any diagnostic survives the
// //maxbr:ignore filter, so `make lint` and CI can gate on it directly.
//
// -fix applies every suggested repair to disk, gofmts the rewritten
// files, and re-runs until the tree is stable; diagnostics that remain
// (no fix available, or fix suppressed) are printed and still gate the
// exit status. -json prints one diagnostic per line as a JSON object for
// tooling. -cache serves unchanged packages from the incremental cache
// (-cachedir overrides its location) and reports hit/miss counts on
// stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		names    = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list     = flag.Bool("list", false, "list the available analyzers and exit")
		dirFlag  = flag.String("C", ".", "directory to run in (module root or below)")
		fix      = flag.Bool("fix", false, "apply suggested fixes to disk and re-run until stable")
		jsonOut  = flag.Bool("json", false, "print diagnostics as JSON, one object per line")
		useCache = flag.Bool("cache", false, "reuse analysis results for unchanged packages")
		cacheDir = flag.String("cachedir", "", "incremental cache directory (default: user cache dir, or $MAXBRLINT_CACHE)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: maxbrlint [flags] [packages...]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *names != "" {
		analyzers = analyzers[:0]
		for _, n := range strings.Split(*names, ",") {
			n = strings.TrimSpace(n)
			a := lint.AnalyzerByName(n)
			if a == nil {
				fmt.Fprintf(os.Stderr, "maxbrlint: unknown analyzer %q (use -list)\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var diags []lint.Diagnostic
	var err error
	switch {
	case *fix:
		// Fixing rewrites sources, so cached entries for the touched
		// packages would be stale mid-loop: -fix always analyzes fresh.
		var outcome *lint.FixOutcome
		outcome, err = lint.FixDir(*dirFlag, patterns, analyzers)
		if err == nil {
			diags = outcome.Remaining
			for _, f := range outcome.ChangedFiles {
				fmt.Fprintf(os.Stderr, "maxbrlint: fixed %s\n", f)
			}
		}
	case *useCache:
		var stats *lint.CacheStats
		diags, stats, err = lint.RunCached(*dirFlag, patterns, analyzers, *cacheDir)
		if err == nil {
			fmt.Fprintf(os.Stderr, "maxbrlint: cache: %d hit(s), %d miss(es)\n", stats.Hits, stats.Misses)
		}
	default:
		diags, err = lint.Run(*dirFlag, patterns, analyzers)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "maxbrlint: %v\n", err)
		os.Exit(2)
	}

	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonOut {
			if err := enc.Encode(lint.DiagnosticJSON(d)); err != nil {
				fmt.Fprintf(os.Stderr, "maxbrlint: %v\n", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "maxbrlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
