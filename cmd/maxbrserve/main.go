// Command maxbrserve is the long-lived MaxBRSTkNN query server: it opens
// one index and serves it over HTTP/JSON to any number of concurrent
// clients, caching prepared user-cohort sessions so repeated cohorts skip
// the expensive joint top-k phase.
//
// Serve a saved index file (the production mode — no rebuild on start):
//
//	maxbrserve -index ./data/index.mxbr -addr :8080
//
// Or build the index in memory from a datagen directory:
//
//	maxbrserve -data ./data -addr :8080
//
// Query it:
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/maxbrstknn -d '{
//	  "users":[{"x":0.5,"y":0.5,"keywords":["sushi"]}],
//	  "locations":[[1.5,1.0],[3.5,2.0]],
//	  "keywords":["sushi","noodles"],
//	  "max_keywords":1, "k":1,
//	  "strategy":"exact", "parallel":{"workers":4}}'
//	curl -s localhost:8080/stats
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, then
// in-flight requests get -drain to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	maxbrstknn "repro"
	"repro/internal/dataset"
	"repro/internal/indexutil"
	"repro/internal/server"
	"repro/internal/vocab"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		indexPath = flag.String("index", "", "saved index file (from `maxbrstknn build`)")
		dataDir   = flag.String("data", "", "directory holding objects.txt (build in memory instead of -index)")
		cache     = flag.Int("cache", 0, "buffer-pool records for a loaded index (0 = default, negative = cold)")
		inflight  = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = 4×GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		sessions  = flag.Int("sessions", 64, "session-cache capacity in user cohorts (negative = unbounded)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	)
	flag.Parse()

	idx, err := openIndex(*indexPath, *dataDir, *cache)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer idx.Close()

	srv := server.New(idx, server.Config{
		Addr:            *addr,
		MaxInFlight:     *inflight,
		RequestTimeout:  *timeout,
		SessionCapacity: *sessions,
	})

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		fmt.Printf("maxbrserve: serving %d objects on %s\n", idx.NumObjects(), *addr)
		done <- srv.ListenAndServe()
	}()

	select {
	case sig := <-stop:
		fmt.Printf("maxbrserve: %v, draining for up to %s\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "maxbrserve: shutdown: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("maxbrserve: drained cleanly")
	case err := <-done:
		fmt.Fprintf(os.Stderr, "maxbrserve: %v\n", err)
		os.Exit(1)
	}
}

// openIndex loads a saved index file, or builds one in memory from a
// datagen directory when -data is given instead.
func openIndex(indexPath, dataDir string, cache int) (*maxbrstknn.Index, error) {
	switch {
	case indexPath != "" && dataDir != "":
		return nil, fmt.Errorf("maxbrserve: pass -index or -data, not both")
	case indexPath != "":
		return maxbrstknn.LoadWithOptions(indexPath, maxbrstknn.LoadOptions{CacheCapacity: cache})
	case dataDir != "":
		return buildFromDir(dataDir)
	default:
		return nil, fmt.Errorf("maxbrserve: -index <file.mxbr> or -data <dir> required")
	}
}

func buildFromDir(dir string) (*maxbrstknn.Index, error) {
	f, err := os.Open(filepath.Join(dir, "objects.txt"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := dataset.ReadObjects(f, vocab.New())
	if err != nil {
		return nil, err
	}
	return indexutil.BuilderFromDataset(ds).Build(maxbrstknn.Options{})
}
