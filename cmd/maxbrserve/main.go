// Command maxbrserve is the long-lived MaxBRSTkNN query server: it opens
// one index and serves it over HTTP/JSON to any number of concurrent
// clients, caching prepared user-cohort sessions so repeated cohorts skip
// the expensive joint top-k phase.
//
// Serve a saved index file (the production mode — no rebuild on start):
//
//	maxbrserve -index ./data/index.mxbr -addr :8080
//
// Or build the index in memory from a datagen directory:
//
//	maxbrserve -data ./data -addr :8080
//
// Query it:
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/maxbrstknn -d '{
//	  "users":[{"x":0.5,"y":0.5,"keywords":["sushi"]}],
//	  "locations":[[1.5,1.0],[3.5,2.0]],
//	  "keywords":["sushi","noodles"],
//	  "max_keywords":1, "k":1,
//	  "strategy":"exact", "parallel":{"workers":4}}'
//	curl -s localhost:8080/stats
//
// Sharded serving splits one dataset across processes. Each shard server
// re-derives the deterministic spatial plan from the shared dataset
// directory and builds only its slice:
//
//	maxbrserve -data ./data -shard 0/2 -addr :8081
//	maxbrserve -data ./data -shard 1/2 -addr :8082
//
// and a coordinator scatters the public query API across them (shard
// addresses in shard-id order):
//
//	maxbrserve -coordinator -shards localhost:8081,localhost:8082 -addr :8080
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, then
// in-flight requests get -drain to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	maxbrstknn "repro"
	"repro/internal/dataset"
	"repro/internal/indexutil"
	"repro/internal/server"
	"repro/internal/shardplan"
	"repro/internal/vocab"
)

// serving is what main drives: both server.Server and server.Coordinator
// satisfy it.
type serving interface {
	ListenAndServe() error
	Shutdown(context.Context) error
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		indexPath = flag.String("index", "", "saved index file (from `maxbrstknn build`)")
		dataDir   = flag.String("data", "", "directory holding objects.txt (build in memory instead of -index)")
		cache     = flag.Int("cache", 0, "buffer-pool records for a loaded index (0 = default, negative = cold)")
		inflight  = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = 4×GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		sessions  = flag.Int("sessions", 64, "session-cache capacity in user cohorts (negative = unbounded)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")

		shardSpec    = flag.String("shard", "", "serve one shard of a sharded deployment: i/N (requires -data; the spatial plan is re-derived from the dataset)")
		coordinator  = flag.Bool("coordinator", false, "run as a scatter-gather coordinator over -shards instead of serving an index")
		shardAddrs   = flag.String("shards", "", "comma-separated shard server addresses in shard-id order (coordinator mode)")
		shardTimeout = flag.Duration("shard-timeout", 10*time.Second, "per-shard call timeout (coordinator mode)")
		forward      = flag.Bool("forward", true, "forward bounds from first-wave shards so later waves prune deeper (coordinator mode)")
	)
	flag.Parse()

	srv, banner, cleanup, err := buildServing(options{
		addr: *addr, indexPath: *indexPath, dataDir: *dataDir, cache: *cache,
		inflight: *inflight, timeout: *timeout, sessions: *sessions,
		shardSpec: *shardSpec, coordinator: *coordinator, shardAddrs: *shardAddrs,
		shardTimeout: *shardTimeout, forward: *forward,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cleanup()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		fmt.Println(banner)
		done <- srv.ListenAndServe()
	}()

	select {
	case sig := <-stop:
		fmt.Printf("maxbrserve: %v, draining for up to %s\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "maxbrserve: shutdown: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("maxbrserve: drained cleanly")
	case err := <-done:
		fmt.Fprintf(os.Stderr, "maxbrserve: %v\n", err)
		os.Exit(1)
	}
}

// options collects the parsed flags so mode selection is testable logic,
// not flag plumbing.
type options struct {
	addr, indexPath, dataDir  string
	cache, inflight, sessions int
	timeout                   time.Duration
	shardSpec                 string
	coordinator               bool
	shardAddrs                string
	shardTimeout              time.Duration
	forward                   bool
}

// buildServing picks and constructs the serving mode: coordinator, shard
// server, or the classic single-index server. cleanup releases whatever
// index the mode opened.
func buildServing(o options) (srv serving, banner string, cleanup func() error, err error) {
	cfg := server.Config{
		Addr:            o.addr,
		MaxInFlight:     o.inflight,
		RequestTimeout:  o.timeout,
		SessionCapacity: o.sessions,
	}
	switch {
	case o.coordinator:
		if o.indexPath != "" || o.dataDir != "" || o.shardSpec != "" {
			return nil, "", nil, fmt.Errorf("maxbrserve: -coordinator serves no index (drop -index/-data/-shard)")
		}
		addrs := splitAddrs(o.shardAddrs)
		if len(addrs) == 0 {
			return nil, "", nil, fmt.Errorf("maxbrserve: -coordinator requires -shards host1,host2,... in shard-id order")
		}
		c, err := server.NewCoordinator(server.CoordinatorConfig{
			Addr:              o.addr,
			Shards:            addrs,
			ShardTimeout:      o.shardTimeout,
			RequestTimeout:    o.timeout,
			ThresholdCapacity: o.sessions,
			DisableForwarding: !o.forward,
		})
		if err != nil {
			return nil, "", nil, err
		}
		return c, fmt.Sprintf("maxbrserve: coordinating %d shards on %s (forwarding %v)", len(addrs), o.addr, o.forward),
			func() error { return nil }, nil

	case o.shardSpec != "":
		if o.dataDir == "" {
			return nil, "", nil, fmt.Errorf("maxbrserve: -shard requires -data (every shard re-derives the plan from the shared dataset)")
		}
		if o.indexPath != "" {
			return nil, "", nil, fmt.Errorf("maxbrserve: -shard builds in memory; it cannot serve a saved -index")
		}
		id, total, err := parseShardSpec(o.shardSpec)
		if err != nil {
			return nil, "", nil, err
		}
		six, err := buildShard(o.dataDir, id, total)
		if err != nil {
			return nil, "", nil, err
		}
		return server.NewShard(six, id, total, cfg),
			fmt.Sprintf("maxbrserve: serving shard %d/%d (%d objects) on %s", id, total, six.NumObjects(), o.addr),
			six.Close, nil

	default:
		idx, err := openIndex(o.indexPath, o.dataDir, o.cache)
		if err != nil {
			return nil, "", nil, err
		}
		return server.New(idx, cfg),
			fmt.Sprintf("maxbrserve: serving %d objects on %s", idx.NumObjects(), o.addr),
			idx.Close, nil
	}
}

// parseShardSpec parses "-shard i/N".
func parseShardSpec(spec string) (id, total int, err error) {
	idStr, totalStr, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("maxbrserve: -shard wants i/N, got %q", spec)
	}
	id, err = strconv.Atoi(idStr)
	if err != nil {
		return 0, 0, fmt.Errorf("maxbrserve: -shard wants i/N, got %q", spec)
	}
	total, err = strconv.Atoi(totalStr)
	if err != nil {
		return 0, 0, fmt.Errorf("maxbrserve: -shard wants i/N, got %q", spec)
	}
	if total <= 0 || id < 0 || id >= total {
		return 0, 0, fmt.Errorf("maxbrserve: shard %d/%d out of range", id, total)
	}
	return id, total, nil
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// buildShard reads the shared dataset, re-derives the deterministic
// spatial plan, and builds only this process's slice under the frozen
// global corpus — no plan file, no global index build.
func buildShard(dir string, id, total int) (*maxbrstknn.ShardIndex, error) {
	ds, err := readDataset(dir)
	if err != nil {
		return nil, err
	}
	opts := maxbrstknn.Options{}
	fc, err := maxbrstknn.FrozenCorpusOf(ds, opts)
	if err != nil {
		return nil, err
	}
	p, err := shardplan.Split(ds, total)
	if err != nil {
		return nil, err
	}
	return shardplan.BuildShard(ds, p, id, fc, opts)
}

// openIndex loads a saved index file, or builds one in memory from a
// datagen directory when -data is given instead.
func openIndex(indexPath, dataDir string, cache int) (*maxbrstknn.Index, error) {
	switch {
	case indexPath != "" && dataDir != "":
		return nil, fmt.Errorf("maxbrserve: pass -index or -data, not both")
	case indexPath != "":
		return maxbrstknn.LoadWithOptions(indexPath, maxbrstknn.LoadOptions{CacheCapacity: cache})
	case dataDir != "":
		ds, err := readDataset(dataDir)
		if err != nil {
			return nil, err
		}
		return indexutil.BuilderFromDataset(ds).Build(maxbrstknn.Options{})
	default:
		return nil, fmt.Errorf("maxbrserve: -index <file.mxbr> or -data <dir> required")
	}
}

func readDataset(dir string) (*dataset.Dataset, error) {
	f, err := os.Open(filepath.Join(dir, "objects.txt"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadObjects(f, vocab.New())
}
