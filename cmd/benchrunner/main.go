// Command benchrunner regenerates the tables and figures of the paper's
// evaluation (Section 8). Each experiment prints one or more aligned text
// tables whose rows correspond to the figure's data series.
//
// Usage:
//
//	benchrunner -exp all                 # every table and figure (slow)
//	benchrunner -exp fig5,fig10          # selected experiments
//	benchrunner -exp fig13 -objects 40000
//	benchrunner -exp table4 -quick       # smoke scale
//	benchrunner -exp scaling -groups 8   # parallel-engine speedup figure
//	benchrunner -exp disk                # cold vs warm disk-backed serving
//	benchrunner -exp hotpath -quick      # decoded-cache + scratch hot path
//	benchrunner -exp ingest -quick       # query latency under live ingest
//	benchrunner -exp sharded -quick      # scatter-gather sharded serving
//
// Experiments: table4 table5 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 fig14 fig15 ablations scaling disk hotpath ingest sharded
// (ingest and sharded are opt-in: ingest mutates its index and sharded
// spins up a multi-server fleet, so -exp all skips both).
//
// The hotpath experiment verifies result equivalence between the cold
// (decode-everything) and warm (decoded-cache) configurations and errors
// on any mismatch; -benchout additionally writes its JSON report (ns/op,
// allocs/op, cache hit rates) to the given file.
//
// The ingest experiment measures p50/p99 query latency while writer
// goroutines continuously insert and delete objects — lock-free
// snapshots vs an emulated reader/writer lock — and ends with the
// ingest-vs-batch-build equivalence gate; -benchout writes its JSON
// report (recorded as BENCH_ingest.json).
//
// The sharded experiment splits the dataset into 1/2/4 spatial shards,
// serves each from its own TCP server behind a scatter-gather
// coordinator, byte-compares every strategy × parallelism response
// against the single-index server, and times a skewed-cohort stream
// with bound forwarding on and off; -benchout writes its JSON report
// (recorded as BENCH_sharded.json).
//
// The scaling experiment sweeps the parallel engine over 1/2/4/8 workers;
// -groups pins the super-user group count across the sweep (default: one
// group per worker) and -workers overrides the engine parallelism used
// when regenerating the other figures (0 keeps them sequential, the
// paper's setting).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/experiments/serving"
	"repro/internal/textrel"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment list (or 'all')")
		quick    = flag.Bool("quick", false, "use the small smoke-test configuration")
		objects  = flag.Int("objects", 0, "override |O|")
		users    = flag.Int("users", 0, "override |U|")
		runs     = flag.Int("runs", 0, "override user-set repetitions")
		measure  = flag.String("measure", "", "text measure: lm, tfidf, ko")
		seed     = flag.Int64("seed", 0, "override dataset seed")
		workers  = flag.Int("workers", 0, "parallel engine workers (0 = sequential)")
		groups   = flag.Int("groups", 0, "super-user groups for the parallel joint phase (0 = one per worker)")
		benchout = flag.String("benchout", "", "write the hotpath experiment's JSON report to this file")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *objects > 0 {
		cfg.NumObjects = *objects
	}
	if *users > 0 {
		cfg.NumUsers = *users
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *groups > 0 {
		cfg.Groups = *groups
	}
	switch strings.ToLower(*measure) {
	case "":
	case "lm":
		cfg.Measure = textrel.LM
	case "tfidf", "tf":
		cfg.Measure = textrel.TFIDF
	case "ko":
		cfg.Measure = textrel.KO
	default:
		fmt.Fprintf(os.Stderr, "unknown measure %q\n", *measure)
		os.Exit(2)
	}

	type runner func() ([]*experiments.Table, error)
	all := []struct {
		name string
		run  runner
	}{
		{"table4", func() ([]*experiments.Table, error) {
			t, err := experiments.Table4(cfg)
			return []*experiments.Table{t}, err
		}},
		{"table5", func() ([]*experiments.Table, error) {
			return []*experiments.Table{experiments.Table5(cfg)}, nil
		}},
		{"fig5", func() ([]*experiments.Table, error) { return experiments.Fig05(cfg, nil) }},
		{"fig6", func() ([]*experiments.Table, error) { return experiments.Fig06(cfg, nil) }},
		{"fig7", func() ([]*experiments.Table, error) { return experiments.Fig07(cfg, nil) }},
		{"fig8", func() ([]*experiments.Table, error) { return experiments.Fig08(cfg, nil) }},
		{"fig9", func() ([]*experiments.Table, error) { return experiments.Fig09(cfg, nil) }},
		{"fig10", func() ([]*experiments.Table, error) { return experiments.Fig10(cfg, nil) }},
		{"fig11", func() ([]*experiments.Table, error) { return experiments.Fig11(cfg, nil) }},
		{"fig12", func() ([]*experiments.Table, error) { return experiments.Fig12(cfg, nil) }},
		{"fig13", func() ([]*experiments.Table, error) { return experiments.Fig13(cfg, nil) }},
		{"fig14", func() ([]*experiments.Table, error) { return experiments.Fig14(cfg, nil) }},
		{"fig15", func() ([]*experiments.Table, error) { return experiments.Fig15(cfg, nil) }},
		{"scaling", func() ([]*experiments.Table, error) { return experiments.FigScaling(cfg) }},
		{"serving", func() ([]*experiments.Table, error) { return serving.Fig(cfg) }},
		{"disk", func() ([]*experiments.Table, error) { return experiments.FigDisk(cfg) }},
		{"hotpath", func() ([]*experiments.Table, error) {
			tables, rep, err := experiments.FigHotpathReport(cfg)
			if err != nil {
				return nil, err
			}
			if err := writeBenchout(*benchout, rep); err != nil {
				return nil, err
			}
			return tables, nil
		}},
		{"ingest", func() ([]*experiments.Table, error) {
			tables, rep, err := serving.FigIngestReport(cfg)
			if err != nil {
				return nil, err
			}
			if err := writeBenchout(*benchout, rep); err != nil {
				return nil, err
			}
			return tables, nil
		}},
		{"sharded", func() ([]*experiments.Table, error) {
			tables, rep, err := serving.FigShardedReport(cfg)
			if err != nil {
				return nil, err
			}
			if err := writeBenchout(*benchout, rep); err != nil {
				return nil, err
			}
			return tables, nil
		}},
		{"ablations", func() ([]*experiments.Table, error) {
			var out []*experiments.Table
			for _, fn := range []func(experiments.Config) (*experiments.Table, error){
				experiments.AblationMinWeights,
				experiments.AblationSuperUser,
				experiments.AblationBestFirst,
			} {
				t, err := fn(cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, t)
			}
			return out, nil
		}},
	}

	// "all" regenerates the paper artifacts; ingest (mutates its index)
	// and sharded (spins up a multi-server fleet) are opt-in like the
	// explicit figure selections, so -exp all stays a read-only
	// single-process pass.
	optIn := map[string]bool{"ingest": true, "sharded": true}
	want := map[string]bool{}
	runAll := *exp == "all"
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}

	fmt.Printf("# MaxBRSTkNN benchrunner — |O|=%d |U|=%d k=%d alpha=%.1f UL=%d UW=%d Area=%.0f |L|=%d ws=%d measure=%s runs=%d\n\n",
		cfg.NumObjects, cfg.NumUsers, cfg.K, cfg.Alpha, cfg.UL, cfg.UW, cfg.Area, cfg.NumLocs, cfg.WS, cfg.Measure, cfg.Runs)

	matched := false
	for _, e := range all {
		if !runAll && !want[e.name] {
			continue
		}
		if runAll && optIn[e.name] && !want[e.name] {
			continue
		}
		matched = true
		start := time.Now()
		tables, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", e.name, time.Since(start).Seconds())
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "no experiment matched %q\n", *exp)
		os.Exit(2)
	}
}

// writeBenchout writes an experiment's JSON report to path (no-op when
// no -benchout was given).
func writeBenchout(path string, rep any) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
