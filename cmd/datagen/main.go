// Command datagen generates the synthetic spatial-textual datasets that
// stand in for the paper's Flickr and Yelp collections (DESIGN.md §3) and
// writes them in the text interchange format of internal/dataset:
//
//	objects.txt:    id <tab> x <tab> y <tab> kw1,kw2,...
//	users.txt:      id <tab> x <tab> y <tab> kw1,kw2,...
//	candidates.txt: "loc" lines (x, y) then one "keywords" line
//
// Usage:
//
//	datagen -kind flickr -n 20000 -out ./data
//	datagen -kind yelp -n 5000 -users 1000 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dataset"
)

func main() {
	var (
		kind  = flag.String("kind", "flickr", "dataset family: flickr or yelp")
		n     = flag.Int("n", 20000, "number of objects")
		users = flag.Int("users", 1000, "number of users")
		ul    = flag.Int("ul", 3, "keywords per user")
		uw    = flag.Int("uw", 20, "pooled unique user keywords")
		area  = flag.Float64("area", 5, "user region side length")
		locs  = flag.Int("locations", 50, "candidate locations")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	var ds *dataset.Dataset
	switch strings.ToLower(*kind) {
	case "flickr":
		cfg := dataset.DefaultFlickrConfig(*n)
		cfg.Seed = *seed
		ds = dataset.GenerateFlickr(cfg)
	case "yelp":
		cfg := dataset.DefaultYelpConfig(*n)
		cfg.Seed = *seed
		ds = dataset.GenerateYelp(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}

	us := dataset.GenerateUsers(ds, dataset.UserConfig{
		NumUsers: *users, UL: *ul, UW: *uw, Area: *area, Seed: *seed + 1,
	})
	cands := dataset.CandidateLocations(us.Region, *locs, *area/4+0.5, *seed+2)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	writeFile(filepath.Join(*out, "objects.txt"), func(f *os.File) error {
		return dataset.WriteObjects(f, ds)
	})
	writeFile(filepath.Join(*out, "users.txt"), func(f *os.File) error {
		return dataset.WriteUsers(f, ds.Vocab, us.Users)
	})
	writeFile(filepath.Join(*out, "candidates.txt"), func(f *os.File) error {
		return dataset.WriteCandidates(f, ds.Vocab, cands, us.Keywords)
	})

	fmt.Printf("wrote %s: %s\n", *out, ds.Describe())
	fmt.Printf("users=%d candidate locations=%d candidate keywords=%d\n",
		len(us.Users), len(cands), len(us.Keywords))
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
